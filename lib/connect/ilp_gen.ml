open Mcs_cdfg
module M = Mcs_ilp.Model

module Ch4 = struct
  type vars = {
    y : (Types.op_id * int, M.var) Hashtbl.t;
    pins_of : M.solution -> (int * int) list;
  }

  let model cdfg cons ~rate ~mode ~max_buses =
    let m = M.create () in
    let n = Cdfg.n_partitions cdfg in
    let ios = Cdfg.io_ops cdfg in
    let buses = Mcs_util.Listx.range 0 max_buses in
    let parts = Mcs_util.Listx.range 0 (n + 1) in
    let y = Hashtbl.create 64 in
    List.iter
      (fun w ->
        List.iter
          (fun h ->
            Hashtbl.replace y (w, h)
              (M.binary m (Printf.sprintf "y_%s_%d" (Cdfg.name cdfg w) h)))
          buses)
      ios;
    let yv w h = Hashtbl.find y (w, h) in
    (* Port-width variables. *)
    let port = Hashtbl.create 64 in
    let port_var tag i h =
      match Hashtbl.find_opt port (tag, i, h) with
      | Some v -> v
      | None ->
          let v = M.int_var m ~lo:0 (Printf.sprintf "%s_%d_%d" tag i h) in
          Hashtbl.replace port (tag, i, h) v;
          v
    in
    (* 4.1: every operation on exactly one bus. *)
    List.iter
      (fun w ->
        M.add_eq m
          (M.sum (List.map (fun h -> M.v (yv w h)) buses))
          (M.const 1))
      ios;
    (* 4.2 / 4.3 data transfer; §4.3 for bidirectional ports. *)
    List.iter
      (fun w ->
        let bw = Cdfg.io_width cdfg w in
        let src = Cdfg.io_src cdfg w and dst = Cdfg.io_dst cdfg w in
        List.iter
          (fun h ->
            match mode with
            | Connection.Unidir ->
                M.add_ge m (M.v (port_var "p" src h)) (M.term bw (yv w h));
                M.add_ge m (M.v (port_var "q" dst h)) (M.term bw (yv w h))
            | Connection.Bidir ->
                M.add_ge m (M.v (port_var "r" src h)) (M.term bw (yv w h));
                M.add_ge m (M.v (port_var "r" dst h)) (M.term bw (yv w h)))
          buses)
      ios;
    (* 4.4 resource constraints. *)
    List.iter
      (fun i ->
        let terms =
          List.concat_map
            (fun h ->
              match mode with
              | Connection.Unidir ->
                  [ M.v (port_var "p" i h); M.v (port_var "q" i h) ]
              | Connection.Bidir -> [ M.v (port_var "r" i h) ])
            buses
        in
        M.add_le m (M.sum terms) (M.const (Constraints.pins cons i)))
      parts;
    (* 4.5 capacity: at most [rate] distinct values per bus. *)
    let values =
      Mcs_util.Listx.uniq String.equal (List.map (Cdfg.io_value cdfg) ios)
    in
    let z = Hashtbl.create 64 in
    List.iter
      (fun v ->
        let ops = Cdfg.io_ops_of_value cdfg v in
        List.iter
          (fun h ->
            let zv = M.binary m (Printf.sprintf "z_%s_%d" v h) in
            Hashtbl.replace z (v, h) zv;
            M.eq_max_bin m zv (List.map (fun w -> yv w h) ops))
          buses)
      values;
    List.iter
      (fun h ->
        M.add_le m
          (M.sum (List.map (fun v -> M.v (Hashtbl.find z (v, h))) values))
          (M.const rate))
      buses;
    (* Objective 4.6: maximize the number of buses actually used. *)
    let used =
      List.map
        (fun h ->
          let u = M.binary m (Printf.sprintf "used_%d" h) in
          M.eq_max_bin m u (List.map (fun w -> yv w h) ios);
          u)
        buses
    in
    M.set_objective m (M.sum (List.map M.v used));
    let pins_of sol =
      List.map
        (fun i ->
          ( i,
            Mcs_util.Listx.sum
              (fun h ->
                match mode with
                | Connection.Unidir ->
                    M.int_value sol (port_var "p" i h)
                    + M.int_value sol (port_var "q" i h)
                | Connection.Bidir -> M.int_value sol (port_var "r" i h))
              buses ))
        parts
    in
    (m, { y; pins_of })

  let solve ?budget ?method_ ?arith cdfg cons ~rate ~mode ~max_buses =
    let m, vars = model cdfg cons ~rate ~mode ~max_buses in
    (* Bus cap left out of the key: the flow sweeps max_buses downward and
       each cap's basis warm-starts the next (same variable names). *)
    let warm_key =
      Printf.sprintf "ch4:%s:%dp:%do"
        (match mode with
        | Connection.Unidir -> "unidir"
        | Connection.Bidir -> "bidir")
        (Cdfg.n_partitions cdfg)
        (List.length (Cdfg.io_ops cdfg))
    in
    match M.solve ?budget ?method_ ?arith ~warm_key m with
    (* A budget-limited but integer-feasible solution is still a valid
       bus assignment — only the bus-count objective may be sub-optimal. *)
    | M.Optimal sol | M.Feasible sol ->
        let assignment =
          List.map
            (fun w ->
              let h =
                List.find
                  (fun h -> M.int_value sol (Hashtbl.find vars.y (w, h)) = 1)
                  (Mcs_util.Listx.range 0 max_buses)
              in
              (w, h))
            (Cdfg.io_ops cdfg)
        in
        `Sat (assignment, vars.pins_of sol)
    | M.Infeasible -> `Unsat
    | M.Unbounded -> `Unknown
    | M.Unknown -> `Unknown
    | M.Exhausted e -> `Exhausted e
end

module Ch6 = struct
  let model cdfg cons ~rate ~max_buses ~subs =
    if subs < 1 then invalid_arg "Ilp_gen.Ch6: subs must be >= 1";
    let m = M.create () in
    let n = Cdfg.n_partitions cdfg in
    let ios = Cdfg.io_ops cdfg in
    let big =
      Mcs_util.Listx.sum (fun w -> Cdfg.io_width cdfg w) ios + 1
    in
    let buses = Mcs_util.Listx.range 0 max_buses in
    let slots = Mcs_util.Listx.range 0 rate in
    let subsl = Mcs_util.Listx.range 0 subs in
    let parts = Mcs_util.Listx.range 0 (n + 1) in
    let x = Hashtbl.create 256 and zb = Hashtbl.create 256 in
    List.iter
      (fun w ->
        List.iter
          (fun h ->
            List.iter
              (fun l ->
                List.iter
                  (fun s ->
                    Hashtbl.replace x (w, h, l, s)
                      (M.binary m
                         (Printf.sprintf "x_%s_%d_%d_%d" (Cdfg.name cdfg w) h l s));
                    Hashtbl.replace zb (w, h, l, s)
                      (M.int_var m ~lo:0 ~hi:(Cdfg.io_width cdfg w)
                         (Printf.sprintf "z_%s_%d_%d_%d" (Cdfg.name cdfg w) h l s)))
                  subsl)
              slots)
          buses)
      ios;
    let xv w h l s = Hashtbl.find x (w, h, l, s) in
    let zv w h l s = Hashtbl.find zb (w, h, l, s) in
    let bw =
      List.concat_map
        (fun h ->
          List.map
            (fun s ->
              ((h, s), M.int_var m ~lo:0 (Printf.sprintf "bw_%d_%d" h s)))
            subsl)
        buses
    in
    let bwv h s = List.assoc (h, s) bw in
    let r =
      List.concat_map
        (fun i ->
          List.map
            (fun h -> ((i, h), M.int_var m ~lo:0 (Printf.sprintf "r_%d_%d" i h)))
            buses)
        parts
    in
    let rv i h = List.assoc (i, h) r in
    (* 6.1: exactly one communication slot per operation. *)
    List.iter
      (fun w ->
        let ms =
          List.concat_map
            (fun h ->
              List.map
                (fun l ->
                  let mv =
                    M.binary m
                      (Printf.sprintf "m_%s_%d_%d" (Cdfg.name cdfg w) h l)
                  in
                  M.eq_max_bin m mv (List.map (xv w h l) subsl);
                  mv)
                slots)
            buses
        in
        M.add_eq m (M.sum (List.map M.v ms)) (M.const 1))
      ios;
    (* 6.2: contiguity — at most one run of ones over the sub-buses. *)
    if subs > 1 then
      List.iter
        (fun w ->
          List.iter
            (fun h ->
              List.iter
                (fun l ->
                  let xors =
                    List.map
                      (fun s ->
                        let t =
                          M.binary m
                            (Printf.sprintf "xor_%s_%d_%d_%d"
                               (Cdfg.name cdfg w) h l s)
                        in
                        M.eq_xor_bin m t (xv w h l (s - 1)) (xv w h l s);
                        t)
                      (Mcs_util.Listx.range 1 subs)
                  in
                  M.add_le m
                    (M.sum
                       (M.v (xv w h l 0)
                       :: M.v (xv w h l (subs - 1))
                       :: List.map M.v xors))
                    (M.const 2))
                slots)
            buses)
        ios;
    (* 6.4: one value per sub-slot (same-value operations may share). *)
    let values =
      Mcs_util.Listx.uniq String.equal (List.map (Cdfg.io_value cdfg) ios)
    in
    List.iter
      (fun h ->
        List.iter
          (fun l ->
            List.iter
              (fun s ->
                let per_value =
                  List.map
                    (fun v ->
                      let ops = Cdfg.io_ops_of_value cdfg v in
                      match ops with
                      | [ w ] -> M.v (xv w h l s)
                      | _ ->
                          let mv =
                            M.binary m
                              (Printf.sprintf "mv_%s_%d_%d_%d" v h l s)
                          in
                          M.eq_max_bin m mv (List.map (fun w -> xv w h l s) ops);
                          M.v mv)
                    values
                in
                M.add_le m (M.sum per_value) (M.const 1))
              subsl)
          slots)
      buses;
    (* 6.5: same-value operations sharing any sub-slot use identical
       sub-slot sets. *)
    List.iter
      (fun v ->
        let ops = Cdfg.io_ops_of_value cdfg v in
        let rec pairs = function
          | [] -> []
          | a :: rest -> List.map (fun b' -> (a, b')) rest @ pairs rest
        in
        List.iter
          (fun (w, w') ->
            List.iter
              (fun h ->
                List.iter
                  (fun l ->
                    let ov =
                      M.int_var m ~lo:0 ~hi:2
                        (Printf.sprintf "ov_%s_%s_%d_%d" (Cdfg.name cdfg w)
                           (Cdfg.name cdfg w') h l)
                    in
                    List.iter
                      (fun s ->
                        M.add_ge m (M.v ov)
                          (M.add (M.v (xv w h l s)) (M.v (xv w' h l s))))
                      subsl;
                    let xors =
                      List.map
                        (fun s ->
                          let t =
                            M.binary m
                              (Printf.sprintf "ovx_%s_%s_%d_%d_%d"
                                 (Cdfg.name cdfg w) (Cdfg.name cdfg w') h l s)
                          in
                          M.eq_xor_bin m t (xv w h l s) (xv w' h l s);
                          t)
                        subsl
                    in
                    (* (ov >= 2) => sum of xors = 0, via (2 - ov) * M >= sum. *)
                    M.add_le m
                      (M.add
                         (M.sum (List.map M.v xors))
                         (M.term subs ov))
                      (M.const (2 * subs)))
                  slots)
              buses)
          (pairs ops))
      values;
    (* 6.6: bits flow only through claimed sub-slots. *)
    List.iter
      (fun w ->
        List.iter
          (fun h ->
            List.iter
              (fun l ->
                List.iter
                  (fun s ->
                    M.iff_positive m ~big_m:(Cdfg.io_width cdfg w) (xv w h l s)
                      (M.v (zv w h l s)))
                  subsl)
              slots)
          buses)
      ios;
    (* 6.7 sub-bus width; 6.8 full value transferred. *)
    List.iter
      (fun w ->
        List.iter
          (fun h ->
            List.iter
              (fun l ->
                List.iter
                  (fun s -> M.add_ge m (M.v (bwv h s)) (M.v (zv w h l s)))
                  subsl)
              slots)
          buses;
        M.add_eq m
          (M.sum
             (List.concat_map
                (fun h ->
                  List.concat_map
                    (fun l -> List.map (fun s -> M.v (zv w h l s)) subsl)
                    slots)
                buses))
          (M.const (Cdfg.io_width cdfg w)))
      ios;
    (* 6.9: a partition touching sub-bus s of bus h connects all earlier
       sub-buses too. *)
    List.iter
      (fun i ->
        let touches w = Cdfg.io_src cdfg w = i || Cdfg.io_dst cdfg w = i in
        let mine = List.filter touches ios in
        if mine <> [] then
          List.iter
            (fun h ->
              List.iter
                (fun s ->
                  let a =
                    M.int_var m ~lo:0 (Printf.sprintf "a_%d_%d_%d" i h s)
                  in
                  List.iter
                    (fun w ->
                      List.iter
                        (fun l -> M.add_ge m (M.v a) (M.v (zv w h l s)))
                        slots)
                    mine;
                  let g = M.binary m (Printf.sprintf "g_%d_%d_%d" i h s) in
                  M.iff_positive m ~big_m:big g (M.v a);
                  (* r_{i,h} >= sum_{t<s} bw_{h,t} + a  when g = 1 *)
                  M.implies_le m ~big_m:big g
                    (M.add
                       (M.sum
                          (List.map
                             (fun t -> M.v (bwv h t))
                             (Mcs_util.Listx.range 0 s)))
                       (M.v a))
                    (M.v (rv i h)))
                subsl)
            buses)
      parts;
    (* 6.10 resource constraints. *)
    List.iter
      (fun i ->
        M.add_le m
          (M.sum (List.map (fun h -> M.v (rv i h)) buses))
          (M.const (Constraints.pins cons i)))
      parts;
    m

  let feasible ?budget ?arith cdfg cons ~rate ~max_buses ~subs =
    let m = model cdfg cons ~rate ~max_buses ~subs in
    let warm_key =
      Printf.sprintf "ch6:%dp:%do:%ds" (Cdfg.n_partitions cdfg)
        (List.length (Cdfg.io_ops cdfg))
        subs
    in
    match M.solve ?budget ~method_:`Branch_bound ?arith ~warm_key m with
    | M.Optimal _ | M.Feasible _ -> Some true
    | M.Infeasible -> Some false
    | M.Unbounded -> Some true
    | M.Unknown | M.Exhausted _ -> None
end

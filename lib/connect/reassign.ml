open Mcs_cdfg
module M = Mcs_obs.Metrics

let m_plans = M.counter "reassign.plans"
let m_repacks = M.counter "reassign.repacks"
let m_repack_failures = M.counter "reassign.repack_failures"
let m_retargets = M.counter "reassign.retargets"

type entry = { value : string; at_cstep : int; mutable entry_ops : Types.op_id list }

type plan = {
  plan_op : Types.op_id;
  plan_cstep : int;
  plan_bus : int;
  plan_retarget : (Types.op_id * int) list; (* tentative moves of others *)
}

type t = {
  cdfg : Cdfg.t;
  conn : Connection.t;
  rate : int;
  dynamic : bool;
  budget : Mcs_resilience.Budget.t;
  alloc : (int * int, entry) Hashtbl.t; (* (bus, group) -> committed slot *)
  tentative : (Types.op_id, int) Hashtbl.t; (* unscheduled ops only *)
  committed : (Types.op_id, int) Hashtbl.t;
  mutable pending : plan option;
}

let create ?(budget = Mcs_resilience.Budget.unlimited) cdfg conn ~rate ~initial
    ~dynamic =
  let tentative = Hashtbl.create 64 in
  List.iter (fun (op, h) -> Hashtbl.replace tentative op h) initial;
  List.iter
    (fun op ->
      if not (Hashtbl.mem tentative op) then
        invalid_arg "Reassign.create: some I/O operation has no initial bus")
    (Cdfg.io_ops cdfg);
  {
    cdfg;
    conn;
    rate;
    dynamic;
    budget;
    alloc = Hashtbl.create 64;
    tentative;
    committed = Hashtbl.create 64;
    pending = None;
  }

let group t cstep = ((cstep mod t.rate) + t.rate) mod t.rate

let free_groups t h =
  let used = ref 0 in
  for g = 0 to t.rate - 1 do
    if Hashtbl.mem t.alloc (h, g) then incr used
  done;
  t.rate - !used

(* Slot admissibility of bus [h] for [op] at [cstep]: wide-enough ports and
   either a free group or a same-value slot at the very same step. *)
let slot_status t op ~cstep h =
  if not (Connection.capable t.conn t.cdfg ~bus:h op) then `No
  else
    match Hashtbl.find_opt t.alloc (h, group t cstep) with
    | None -> `Free
    | Some e ->
        if
          String.equal e.value (Cdfg.io_value t.cdfg op)
          && e.at_cstep = cstep
        then `Share
        else `No

(* Can all unscheduled operations except [op] still be packed onto the
   buses if bus [h] loses one more free group?  Returns the packing as a
   retargeting list when possible.

   Operations transferring the same value can share one communication slot
   (scheduled together, §2.2.1), so the left side of the matching holds
   {e slot demands}: one vertex per value when all its operations share a
   capable bus, individual vertices otherwise. *)
let repack t ~except ~consumed_bus =
  M.incr m_repacks;
  let ops =
    List.filter
      (fun w -> (not (Hashtbl.mem t.committed w)) && w <> except)
      (Cdfg.io_ops t.cdfg)
  in
  let nb = Connection.n_buses t.conn in
  let capable h w = Connection.capable t.conn t.cdfg ~bus:h w in
  let all_buses = Mcs_util.Listx.range 0 nb in
  (* Operations transferring [except]'s value can ride the slot [except] is
     about to claim (same bus, same step), so they demand nothing. *)
  let except_value = Cdfg.io_value t.cdfg except in
  let ops =
    List.filter
      (fun w ->
        not
          (String.equal (Cdfg.io_value t.cdfg w) except_value
          && capable consumed_bus w))
      ops
  in
  (* Demand groups: (member ops, buses usable by the whole group). *)
  let demands =
    List.concat_map
      (fun (_, members) ->
        let common = List.filter (fun h -> List.for_all (capable h) members) all_buses in
        if common <> [] && List.length members > 1 then [ (members, common) ]
        else
          List.map (fun w -> ([ w ], List.filter (fun h -> capable h w) all_buses)) members)
      (Mcs_util.Listx.group_by (Cdfg.io_value t.cdfg) ops)
  in
  let demands = Array.of_list demands in
  (* Unit capacities: one right vertex per free group per bus. *)
  let units = ref [] in
  for h = nb - 1 downto 0 do
    let f = free_groups t h - (if h = consumed_bus then 1 else 0) in
    for _ = 1 to f do
      units := h :: !units
    done
  done;
  let units = Array.of_list !units in
  let bip =
    Mcs_graph.Bipartite.create ~n_left:(Array.length demands)
      ~n_right:(Array.length units)
  in
  Array.iteri
    (fun i (_, buses) ->
      Array.iteri
        (fun j h -> if List.mem h buses then Mcs_graph.Bipartite.add_edge bip ~left:i ~right:j)
        units)
    demands;
  (* Seed with the current tentative assignment so the repacking moves as
     few operations as possible; augmenting paths fix the rest. *)
  let seen = Hashtbl.create 16 in
  Array.iteri
    (fun i (members, buses) ->
      let h0 =
        match members with
        | w :: _ -> Hashtbl.find_opt t.tentative w
        | [] -> None
      in
      match h0 with
      | Some h0 when List.mem h0 buses ->
          let j = ref (-1) in
          Array.iteri
            (fun k h ->
              if !j < 0 && h = h0 && not (Hashtbl.mem seen k) then j := k)
            units;
          if !j >= 0 then begin
            Hashtbl.add seen !j ();
            Mcs_graph.Bipartite.force_pair bip ~left:i ~right:!j
          end
      | _ -> ())
    demands;
  (* Exhaustion propagates out of the io_hook; List_sched.run converts it
     into a typed [Exhausted] failure. *)
  let size = Mcs_graph.Bipartite.max_matching ~budget:t.budget bip in
  if size < Array.length demands then begin
    M.incr m_repack_failures;
    None
  end
  else
    Some
      (List.concat
         (List.mapi
            (fun i (members, _) ->
              match Mcs_graph.Bipartite.match_of_left bip i with
              | Some j -> List.map (fun w -> (w, units.(j))) members
              | None -> assert false)
            (Array.to_list demands)))

let make_plan t op ~cstep =
  M.incr m_plans;
  let candidates =
    (* Paper's order: the tentatively assigned bus first; a same-value slot
       costs nothing; among the remaining free buses, prefer the one with
       the most slack so the preemption chain disturbs least. *)
    let all = Mcs_util.Listx.range 0 (Connection.n_buses t.conn) in
    let tentative = Hashtbl.find_opt t.tentative op in
    let rest = List.filter (fun h -> Some h <> tentative) all in
    let shares, frees =
      List.partition (fun h -> slot_status t op ~cstep h = `Share) rest
    in
    let frees =
      List.sort (fun a b -> compare (free_groups t b) (free_groups t a)) frees
    in
    (match tentative with Some h0 -> [ h0 ] | None -> [])
    @ shares @ frees
  in
  let consider h =
    match slot_status t op ~cstep h with
    | `No -> None
    | `Share ->
        Some { plan_op = op; plan_cstep = cstep; plan_bus = h; plan_retarget = [] }
    | `Free ->
        if not t.dynamic then begin
          (* Static assignment: only the initially assigned bus counts. *)
          if Hashtbl.find_opt t.tentative op = Some h then
            Some
              { plan_op = op; plan_cstep = cstep; plan_bus = h; plan_retarget = [] }
          else None
        end
        else begin
          match repack t ~except:op ~consumed_bus:h with
          | None -> None
          | Some moves ->
              Some
                {
                  plan_op = op;
                  plan_cstep = cstep;
                  plan_bus = h;
                  plan_retarget = moves;
                }
        end
  in
  List.find_map consider candidates

let hook t =
  let io_can _sched op ~cstep =
    match make_plan t op ~cstep with
    | None ->
        t.pending <- None;
        false
    | Some p ->
        t.pending <- Some p;
        true
  in
  let io_commit _sched op ~cstep =
    let p =
      match t.pending with
      | Some p when p.plan_op = op && p.plan_cstep = cstep -> p
      | _ -> (
          match make_plan t op ~cstep with
          | Some p -> p
          | None -> invalid_arg "Reassign: commit without a feasible plan")
    in
    t.pending <- None;
    let g = group t cstep in
    (match Hashtbl.find_opt t.alloc (p.plan_bus, g) with
    | Some e -> e.entry_ops <- e.entry_ops @ [ op ]
    | None ->
        Hashtbl.add t.alloc (p.plan_bus, g)
          { value = Cdfg.io_value t.cdfg op; at_cstep = cstep; entry_ops = [ op ] });
    Hashtbl.remove t.tentative op;
    Hashtbl.replace t.committed op p.plan_bus;
    List.iter
      (fun (w, h) ->
        if Hashtbl.find_opt t.tentative w <> Some h then M.incr m_retargets;
        Hashtbl.replace t.tentative w h)
      p.plan_retarget
  in
  { Mcs_sched.List_sched.io_can; io_commit }

let committed_bus t op = Hashtbl.find_opt t.committed op

let final_assignment t =
  List.filter_map
    (fun op ->
      match Hashtbl.find_opt t.committed op with
      | Some h -> Some (op, h)
      | None -> None)
    (Cdfg.io_ops t.cdfg)

let allocation_table t =
  let rows = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.alloc [] in
  List.sort compare
    (List.map
       (fun ((h, g), e) -> ((h, g), (e.value, e.at_cstep, e.entry_ops)))
       rows)

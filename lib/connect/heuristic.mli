(** The branch-limited heuristic search of §4.1.2 (Fig. 4.3): determine the
    interchip connection structure — buses, port widths, and a tentative
    assignment of every I/O operation to a bus — before scheduling.

    I/O operations are assigned in descending bit-width order; at each level
    only the [branching] best candidate buses (by the gain
    [g = 10000 g1 + 100 g2 + g3], favouring port reuse weighted by pin
    scarcity, same-value sharing, and slot balance) with pairwise distinct
    topologies are explored, plus a fresh bus. *)

open Mcs_cdfg

type result = {
  conn : Connection.t;
  assign : (Types.op_id * int) list;  (** I/O operation -> bus id *)
}

type error =
  | Infeasible  (** no connection satisfies the pin constraints *)
  | Exhausted of Mcs_resilience.Budget.exhausted
      (** node/wall budget ran out (either [max_nodes], an explicit
          budget, or the [exhaust-heuristic] fault) *)

val error_message : error -> string

val search :
  ?budget:Mcs_resilience.Budget.t ->
  Cdfg.t ->
  Constraints.t ->
  rate:int ->
  mode:Connection.mode ->
  ?slot_cap:int ->
  ?branching:int ->
  ?max_nodes:int ->
  unit ->
  (result, error) Stdlib.result
(** [branching] defaults to 2, [max_nodes] (search-tree node budget) to
    200_000.  [slot_cap] (default [rate]) caps the values tentatively packed
    onto one bus; lowering it below the initiation rate forces a
    wider-bandwidth connection with more buses, serving the role of the
    paper's bus-count-maximizing ILP objective (4.6) when the packed-tight
    connection leaves the scheduler no slack. *)

val pins_used_by_partition : result -> int list
(** Pins committed per partition [0 .. N]. *)

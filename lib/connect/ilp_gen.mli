(** ILP formulations of the interchip-connection synthesis problems.

    The dissertation submitted these formulations to the Bozo and Lindo
    packages; they were too large to solve at practical sizes but remain
    "useful for verification of synthesized results" (§4.1.2).  Exactly so
    here: the test suite solves them with the in-repo branch-and-bound on
    small designs and checks the heuristics' results against them. *)

open Mcs_cdfg

(** Chapter 4 (§4.1.1): assignment of every I/O operation to one of at most
    [max_buses] buses with port-width and pin-budget constraints, capacity
    [rate] values per bus, maximizing the number of buses used (4.6). *)
module Ch4 : sig
  type vars

  val model :
    Cdfg.t -> Constraints.t -> rate:int -> mode:Connection.mode ->
    max_buses:int -> Mcs_ilp.Model.t * vars

  val solve :
    ?budget:Mcs_resilience.Budget.t ->
    ?method_:[ `Branch_bound | `Gomory ] ->
    ?arith:Mcs_ilp.Fsimplex.arith ->
    Cdfg.t -> Constraints.t -> rate:int -> mode:Connection.mode ->
    max_buses:int ->
    [ `Sat of (Types.op_id * int) list * (int * int) list
      (** assignment and per-partition pins used *)
    | `Unsat
    | `Unknown
    | `Exhausted of Mcs_resilience.Budget.exhausted ]
  (** [arith] (default {!Mcs_ilp.Fsimplex.arith_of_env}) selects the
      solver arithmetic; the float-certified mode chains bases across the
      bus-cap sweep through a cap-independent {!Mcs_ilp.Warm} key. *)
end

(** Chapter 6 (§6.1.1): sub-slot assignment with buses divided into [subs]
    sub-buses, including the contiguity (exclusive-or transition counting)
    and shared-sub-slot constraints, linearized as in §6.1.1.4. *)
module Ch6 : sig
  val model :
    Cdfg.t -> Constraints.t -> rate:int -> max_buses:int -> subs:int ->
    Mcs_ilp.Model.t

  val feasible :
    ?budget:Mcs_resilience.Budget.t ->
    ?arith:Mcs_ilp.Fsimplex.arith ->
    Cdfg.t -> Constraints.t -> rate:int -> max_buses:int -> subs:int ->
    bool option
  (** [None] when the solver budget runs out. *)
end

open Mcs_cdfg
module M = Mcs_obs.Metrics
module Budget = Mcs_resilience.Budget
module Fault = Mcs_resilience.Fault

let m_searches = M.counter "heuristic.searches"
let m_nodes = M.counter "heuristic.nodes"
let m_backtracks = M.counter "heuristic.backtracks"
let m_budget_exhausted = M.counter "heuristic.budget_exhausted"

type result = {
  conn : Connection.t;
  assign : (Types.op_id * int) list;
}

type error = Infeasible | Exhausted of Budget.exhausted

let error_message = function
  | Infeasible ->
      "Heuristic.search: no interchip connection satisfies the pin \
       constraints"
  | Exhausted e -> "Heuristic.search: " ^ Budget.message e

exception Budget_exhausted

let search ?(budget = Budget.unlimited) cdfg cons ~rate ~mode ?slot_cap
    ?(branching = 2) ?(max_nodes = 200_000) () =
  let slot_cap =
    match slot_cap with
    | None -> rate
    | Some c ->
        if c < 1 || c > rate then invalid_arg "Heuristic.search: bad slot_cap";
        c
  in
  let n_partitions = Cdfg.n_partitions cdfg in
  let conn = Connection.create mode ~n_partitions in
  let ops =
    List.sort
      (fun a b ->
        let c = compare (Cdfg.io_width cdfg b) (Cdfg.io_width cdfg a) in
        if c <> 0 then c else compare a b)
      (Cdfg.io_ops cdfg)
  in
  let assigned : (Types.op_id, int) Hashtbl.t = Hashtbl.create 64 in
  (* Distinct values tentatively carried by each bus (capacity L). *)
  let values_on : (int * string, int) Hashtbl.t = Hashtbl.create 64 in
  let slots_used : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let slots h = Option.value ~default:0 (Hashtbl.find_opt slots_used h) in
  let value_present h v = Hashtbl.mem values_on (h, v) in
  let add_value h v =
    match Hashtbl.find_opt values_on (h, v) with
    | Some n -> Hashtbl.replace values_on (h, v) (n + 1)
    | None ->
        Hashtbl.add values_on (h, v) 1;
        Hashtbl.replace slots_used h (slots h + 1)
  in
  let remove_value h v =
    match Hashtbl.find_opt values_on (h, v) with
    | Some 1 ->
        Hashtbl.remove values_on (h, v);
        Hashtbl.replace slots_used h (slots h - 1)
    | Some n -> Hashtbl.replace values_on (h, v) (n - 1)
    | None -> assert false
  in
  (* Pin scarcity weight of §4.1.2. *)
  let unassigned_bits = Array.make (n_partitions + 1) 0 in
  List.iter
    (fun w ->
      let bits = Cdfg.io_width cdfg w in
      unassigned_bits.(Cdfg.io_src cdfg w) <-
        unassigned_bits.(Cdfg.io_src cdfg w) + bits;
      unassigned_bits.(Cdfg.io_dst cdfg w) <-
        unassigned_bits.(Cdfg.io_dst cdfg w) + bits)
    ops;
  let wf p =
    let free = Constraints.pins cons p - Connection.pins_used conn p in
    if free <= 0 then 1000.0
    else float_of_int unassigned_bits.(p) /. float_of_int free
  in
  let fits w h =
    let src = Cdfg.io_src cdfg w
    and dst = Cdfg.io_dst cdfg w
    and width = Cdfg.io_width cdfg w in
    let d_src, d_dst = Connection.extra_pins_for conn ~bus:h ~src ~dst ~width in
    let pin_ok =
      Connection.pins_used conn src + d_src <= Constraints.pins cons src
      && Connection.pins_used conn dst + d_dst <= Constraints.pins cons dst
      (* When src and dst demand pins of the same chip it would be the same
         budget; src <> dst for I/O operations so the two checks are
         independent. *)
    in
    let cap_ok = value_present h (Cdfg.io_value cdfg w) || slots h < slot_cap in
    pin_ok && cap_ok
  in
  let gain w h =
    let src = Cdfg.io_src cdfg w and dst = Cdfg.io_dst cdfg w in
    let src_connected = Connection.out_width conn ~bus:h ~partition:src > 0 in
    let dst_connected = Connection.in_width conn ~bus:h ~partition:dst > 0 in
    let g1 =
      (if src_connected then wf src else 0.0)
      +. if dst_connected then wf dst else 0.0
    in
    let g2 = if value_present h (Cdfg.io_value cdfg w) then 1.0 else 0.0 in
    let g3 = float_of_int (slot_cap - slots h) in
    (10000.0 *. g1) +. (100.0 *. g2) +. g3
  in
  (* Sound feasibility prune: assuming maximal reuse of existing ports'
     free slots, the remaining unassigned operations on each side of each
     partition still need at least [side_lower_bound] fresh pins; a branch
     whose optimistic completion already blows a budget is dead. *)
  let side_lower_bound unassigned_ops port_widths =
    (* Each existing port can absorb, per free slot, one op no wider than
       itself; absorb widest-compatible first (optimistic). *)
    let widths =
      List.sort (fun a b -> compare b a) unassigned_ops (* desc *)
    in
    let ports = List.sort (fun (a, _) (b, _) -> compare a b) port_widths in
    (* ports ascending by width: narrow ports absorb the narrowest ops they
       can, leaving wide ports for wide ops — optimistic either way; absorb
       greedily. *)
    let leftovers =
      List.fold_left
        (fun remaining (pw, free) ->
          let rec absorb k rem =
            if k = 0 then rem
            else
              match rem with
              | [] -> []
              | w :: tl when w <= pw -> absorb (k - 1) tl
              | w :: tl -> w :: absorb k tl
          in
          absorb free remaining)
        widths ports
    in
    (* Fresh pins for the leftovers: chunks of [slot_cap] values per new
       port, each port as wide as its widest member. *)
    let rec chunked = function
      | [] -> 0
      | widest :: _ as rem ->
          let rest = List.filteri (fun i _ -> i >= slot_cap) rem in
          widest + chunked rest
    in
    chunked leftovers
  in
  let viable () =
    let ok p =
      let in_ops = ref [] and out_vals = ref [] in
      List.iter
        (fun w ->
          if not (Hashtbl.mem assigned w) then begin
            if Cdfg.io_dst cdfg w = p then
              in_ops := Cdfg.io_width cdfg w :: !in_ops;
            if Cdfg.io_src cdfg w = p then
              out_vals := (Cdfg.io_value cdfg w, Cdfg.io_width cdfg w) :: !out_vals
          end)
        ops;
      let out_ops = List.map snd (Mcs_util.Listx.uniq (fun a b -> String.equal (fst a) (fst b)) !out_vals) in
      let ports side_width =
        List.filter_map
          (fun h ->
            let pw = side_width h in
            if pw > 0 then Some (pw, max 0 (slot_cap - slots h)) else None)
          (Mcs_util.Listx.range 0 (Connection.n_buses conn))
      in
      let lb =
        match mode with
        | Connection.Unidir ->
            side_lower_bound !in_ops
              (ports (fun h -> Connection.in_width conn ~bus:h ~partition:p))
            + side_lower_bound out_ops
                (ports (fun h -> Connection.out_width conn ~bus:h ~partition:p))
        | Connection.Bidir ->
            side_lower_bound
              (!in_ops @ out_ops)
              (ports (fun h -> Connection.out_width conn ~bus:h ~partition:p))
      in
      Connection.pins_used conn p + lb <= Constraints.pins cons p
    in
    List.for_all ok (Mcs_util.Listx.range 0 (n_partitions + 1))
  in
  M.incr m_searches;
  let nodes = ref 0 in
  let rec assign_nodes = function
    | [] -> true
    | w :: rest ->
        incr nodes;
        M.incr m_nodes;
        Budget.spend_node budget;
        if !nodes > max_nodes then raise Budget_exhausted;
        let src = Cdfg.io_src cdfg w
        and dst = Cdfg.io_dst cdfg w
        and width = Cdfg.io_width cdfg w in
        let existing =
          List.filter (fits w) (Mcs_util.Listx.range 0 (Connection.n_buses conn))
        in
        let ranked =
          List.sort
            (fun a b -> compare (gain w b) (gain w a))
            existing
        in
        (* Keep the best few with pairwise distinct topologies (§4.1.2). *)
        let rec distinct seen = function
          | [] -> []
          | h :: hs ->
              let topo = Connection.topology conn ~bus:h in
              if List.mem topo seen then distinct seen hs
              else h :: distinct (topo :: seen) hs
        in
        let candidates = Mcs_util.Listx.take branching (distinct [] ranked) in
        let try_bus h =
          let saved_out = Connection.out_width conn ~bus:h ~partition:src in
          let saved_in = Connection.in_width conn ~bus:h ~partition:dst in
          Connection.widen_for conn ~bus:h ~src ~dst ~width;
          add_value h (Cdfg.io_value cdfg w);
          Hashtbl.replace assigned w h;
          unassigned_bits.(src) <- unassigned_bits.(src) - width;
          unassigned_bits.(dst) <- unassigned_bits.(dst) - width;
          if viable () && assign_nodes rest then true
          else begin
            M.incr m_backtracks;
            unassigned_bits.(src) <- unassigned_bits.(src) + width;
            unassigned_bits.(dst) <- unassigned_bits.(dst) + width;
            Hashtbl.remove assigned w;
            remove_value h (Cdfg.io_value cdfg w);
            Connection.shrink conn ~bus:h ~src ~dst ~out_w:saved_out
              ~in_w:saved_in;
            false
          end
        in
        List.exists try_bus candidates
        ||
        (* Fresh bus as the final alternative. *)
        let h = Connection.new_bus conn in
        if fits w h && try_bus h then true
        else begin
          Connection.drop_last_bus conn;
          false
        end
  in
  match
    match Fault.exhaust_heuristic () with
    | Some e -> raise (Budget.Out_of_budget e)
    | None -> assign_nodes ops
  with
  | exception Budget_exhausted ->
      M.incr m_budget_exhausted;
      if Mcs_obs.Events.on () then
        Mcs_obs.Events.emit ~cat:"heuristic" "exhausted"
          ~args:
            [
              ("resource", Mcs_obs.Events.Str "nodes");
              ("limit", Mcs_obs.Events.Int max_nodes);
              ("spent", Mcs_obs.Events.Int !nodes);
            ];
      Error
        (Exhausted
           { Budget.resource = Budget.Nodes; limit = max_nodes; spent = !nodes })
  | exception Budget.Out_of_budget e ->
      M.incr m_budget_exhausted;
      Error (Exhausted e)
  | false -> Error Infeasible
  | true ->
      let assign =
        List.map (fun w -> (w, Hashtbl.find assigned w)) (Cdfg.io_ops cdfg)
      in
      Ok { conn; assign }

let pins_used_by_partition r =
  List.map
    (fun p -> Connection.pins_used r.conn p)
    (Mcs_util.Listx.range 0 (Connection.n_partitions r.conn + 1))

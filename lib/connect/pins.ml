let tally ~n_partitions contributions =
  let totals = Array.make (n_partitions + 1) 0 in
  List.iter
    (fun (p, wires) ->
      if p >= 0 && p <= n_partitions then totals.(p) <- totals.(p) + wires)
    contributions;
  List.mapi (fun p n -> (p, n)) (Array.to_list totals)

let of_connection conn =
  List.map
    (fun p -> (p, Connection.pins_used conn p))
    (Mcs_util.Listx.range 0 (Connection.n_partitions conn + 1))

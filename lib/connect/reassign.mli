(** Communication-bus allocation during scheduling, with the dynamic
    reassignment of §4.2: when the bus tentatively assigned to an I/O
    operation is already allocated in the current control-step group, the
    operation may preempt another (not yet scheduled) operation's tentative
    bus, which preempts another, and so on — an augmenting path in a
    bipartite graph of I/O operations versus communication slots (Fig. 4.5).

    Two I/O operations transferring the same value may share one slot when
    scheduled in the same control step (§4.4.2). *)

open Mcs_cdfg

type t

val create :
  ?budget:Mcs_resilience.Budget.t ->
  Cdfg.t ->
  Connection.t ->
  rate:int ->
  initial:(Types.op_id * int) list ->
  dynamic:bool ->
  t
(** [dynamic:false] reproduces the paper's static-assignment baseline: an
    I/O operation may only ever use the bus it was initially assigned.
    [budget] bounds the repacking matchings; exhaustion raises
    {!Mcs_resilience.Budget.Out_of_budget} out of the {!hook}, which
    [List_sched.run] converts into a typed failure. *)

val hook : t -> Mcs_sched.List_sched.io_hook

val committed_bus : t -> Types.op_id -> int option
(** Bus the (scheduled) operation finally used. *)

val final_assignment : t -> (Types.op_id * int) list
(** Scheduled operations with their final buses, in operation order. *)

val allocation_table : t -> ((int * int) * (string * int * Types.op_id list)) list
(** [((bus, group), (value, cstep, ops))] rows — the "Bus allocation" tables
    (4.4, 4.6, 4.8, 4.15...) of the dissertation. *)

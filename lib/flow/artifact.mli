(** Intermediate artifacts a flow phase hands to the pass manager.

    The pass manager ({!Pass.phase}) exposes each phase's product in this
    common shape so a checker ({!Mcs_check}) can audit it {e between}
    phases, and an artifact dumper can serialize it, without knowing which
    flow produced it. *)

open Mcs_cdfg

(** The three connection structures the dissertation's flows build. *)
type connection =
  | Bundles of Mcs_core.Simple_part.Theorem31.bundle list
      (** Chapter 3: per-end wire bundles of the constructive proof *)
  | Buses of {
      conn : Mcs_connect.Connection.t;
      initial : (Types.op_id * int) list;
      assignment : (Types.op_id * int) list;
          (** final operation-to-bus assignment (equals [initial] before
              scheduling commits reassignments) *)
      allocation : ((int * int) * (string * int * Types.op_id list)) list;
          (** [((bus, group), (value, cstep, ops))]; empty before
              scheduling *)
    }  (** Chapters 4 and 5: shared buses *)
  | Subbuses of {
      buses : Mcs_core.Subbus.real_bus list;
      initial : (Types.op_id * (int * Mcs_core.Subbus.sub)) list;
      assignment : (Types.op_id * (int * Mcs_core.Subbus.sub)) list;
      allocation :
        ((int * Mcs_core.Subbus.sub * int) * (string * int * Types.op_id list))
        list;  (** [((bus, slice, group), (value, cstep, ops))] *)
    }  (** Chapter 6: buses with sub-bus slices *)

type t =
  | Schedule of Mcs_sched.Schedule.t
  | Connection of connection
  | Pins of (int * int) list

val kind : t -> string
(** ["schedule"], ["connection"] or ["pins"], for dump file naming. *)

val to_json : Cdfg.t -> t -> Mcs_obs.Report_json.t
(** A compact, human-diffable JSON rendering for [--dump] artifacts. *)

(** The unified synthesis flow API.

    All four dissertation flows — Ch. 3 pin-constrained scheduling on a
    simple partitioning, Ch. 4 connection-first, Ch. 5 schedule-first,
    Ch. 6 sub-bus sharing — run through one entry point ({!run}) on one
    input shape ({!spec}) and produce one result shape ({!result}).  Each
    flow is decomposed into phases executed by the {!Pass} manager, so
    every run gets spans, metrics, typed diagnostics, optional artifact
    dumping and (when a checker is injected, see {!Mcs_check}) static
    analysis between phases and on the final result — uniformly, with no
    per-flow glue in the callers. *)

open Mcs_cdfg

type name = Ch3 | Ch4 | Ch5 | Ch6

val all : name list
val name_to_string : name -> string
val name_of_string : string -> (name, string) result

type spec = {
  tag : string;  (** design name, for reports *)
  cdfg : Cdfg.t;
  mlib : Module_lib.t;
  cons : Constraints.t;
  rate : int;
  pipe_length : int option;
      (** Ch. 5 target pipe length (default: the critical path); ignored
          by the other flows *)
  mode : Mcs_connect.Connection.mode;
}

type policy = {
  budget : Mcs_resilience.Budget.t;
      (** shared by every solver the flow invokes (scheduling, pin ILP,
          connection search, matchings); one deadline and one set of
          counters for the whole run *)
  fallback : bool;
      (** engage the degradation ladder on budget exhaustion (default
          [true]); with [false], exhaustion is a [Diag.Exhausted] error *)
  exact_first : bool;
      (** Ch. 4 only: try the exact ILP formulation of §4.1.1 before the
          heuristic search (default [false]) *)
  refine : int;
      (** iteration cap for the {!Mcs_refine} anytime-improvement loop
          (default [0] = off; {!run} itself never refines — the cap is
          carried here so every layer that owns a policy, from the CLI to
          the engine to the server, shares one knob) *)
}

val default_policy : policy
(** Unlimited budget, [fallback = true], [exact_first = false],
    [refine = 0] — with no budget and no injected fault nothing ever
    exhausts, so the ladder never engages and results are bit-identical
    to a policy-less run. *)

val spec_of_design :
  ?pipe_length:int ->
  ?mode:Mcs_connect.Connection.mode ->
  flow:name ->
  Benchmarks.design ->
  rate:int ->
  spec
(** Builds the spec the paper's experiments use for [flow] on a bundled
    benchmark: unidirectional pin budgets for Ch. 3 (and by default Ch. 4
    and Ch. 5), bidirectional for Ch. 6 (its experiments' assumption), and
    the design's minimal functional units. *)

type result = {
  flow : name;
  tag : string;
  rate : int;
  mode : Mcs_connect.Connection.mode;
  schedule : Mcs_sched.Schedule.t;
  connection : Artifact.connection;
  pins : (int * int) list;  (** per partition, complete over [0..n] *)
  fus : ((int * string) * int) list;
      (** per (partition, optype): the constraint tables' allocation for
          the resource-constrained flows, FDS-implied counts for Ch. 5 *)
  pipe_length : int;
  static_pipe_length : int option;
      (** Ch. 4/6 static-assignment baseline, when it completes *)
  attempts : int;  (** retry-loop iterations the flow needed *)
  diags : Diag.t list;
      (** diagnostics collected during the run; under {!Pass.Warn} this
          includes checker violations (severity [Error]) that did not
          abort the flow *)
  degraded : string list;
      (** degradation-ladder steps taken, in order; empty for a
          full-quality result.  Each step is also a [Warning]-severity
          [Diag.Degraded] diagnostic on [diags]. *)
}

val pins_of : n_partitions:int -> Artifact.connection -> (int * int) list
(** Recompute the per-partition pin table from the connection structure
    alone (via {!Mcs_connect.Pins}, the single source of truth): wire
    bundles by owner, shared buses by port width, sub-buses by port
    commitment. *)

val fus_of_constraints :
  Cdfg.t -> Module_lib.t -> Constraints.t -> ((int * string) * int) list
(** The constraint tables' functional-unit allocation as a per
    [(partition, optype)] list (only nonzero entries). *)

val pins_total : result -> int
val fus_total : result -> int
val clean : result -> bool
(** No [Error]-severity diagnostic on the result. *)

val is_degraded : result -> bool
(** At least one degradation-ladder step was taken. *)

val run :
  ?level:Pass.level ->
  ?checker:Artifact.t Pass.checker ->
  ?check_result:(result -> Diag.t list) ->
  ?dump:(phase:string -> Artifact.t -> unit) ->
  ?policy:policy ->
  name ->
  spec ->
  (result, Diag.t) Stdlib.result
(** Run one flow through the pass manager.  [checker] audits each phase's
    artifact, [check_result] the assembled result; both run only when
    [level] is [Warn] or [Strict] (default [Off]).  Under [Strict] the
    first violation anywhere turns the run into [Error]; under [Warn]
    violations are collected on [result.diags].  [dump] receives every
    phase artifact regardless of [level].

    [policy] bounds the run and controls the degradation ladder.  When the
    shared budget exhausts (or a {!Mcs_resilience.Fault} injects
    exhaustion), each flow steps down — Ch. 3: pin-checked scheduling to
    unchecked scheduling with Theorem 3.1 dedicated buses; Ch. 4: exact
    ILP (when [exact_first]) to heuristic search to dedicated buses;
    Ch. 5: force-directed to list scheduling, merged to unmerged cliques;
    Ch. 6: sub-bus sweep to best-completed-cap to dedicated buses — with
    every step on [result.degraded].  The invariant: the caller always
    gets a (possibly degraded) result whose artifacts verify, or a typed
    diagnostic; never an exception, never an unbounded run. *)

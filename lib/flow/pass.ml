module M = Mcs_obs.Metrics

type level = Off | Warn | Strict
type 'a checker = phase:string -> 'a -> Diag.t list

type 'a t = {
  flow : string;
  lvl : level;
  checker : 'a checker option;
  dump : (phase:string -> 'a -> unit) option;
  mutable n_attempts : int;
  mutable collected : Diag.t list;  (* reverse emission order *)
  mutable failed_check : bool;
  mutable degraded_steps : string list;  (* reverse emission order *)
}

let m_phases = M.counter "flow.phases"
let m_violations = M.counter "flow.check.violations"
let m_aborts = M.counter "flow.check.aborts"

let create ?(level = Off) ?checker ?dump ~flow () =
  {
    flow;
    lvl = level;
    checker;
    dump;
    n_attempts = 0;
    collected = [];
    failed_check = false;
    degraded_steps = [];
  }

let level t = t.lvl
let attempt t = t.n_attempts <- t.n_attempts + 1
let attempts t = t.n_attempts
let record t d = t.collected <- d :: t.collected
let diags t = List.rev t.collected
let check_failed t = t.failed_check

let m_degraded = M.counter "flow.degraded_steps"

let degrade t ~phase note =
  t.degraded_steps <- note :: t.degraded_steps;
  M.incr m_degraded;
  if Mcs_obs.Events.on () then
    Mcs_obs.Events.emit ~cat:"ladder" "degrade"
      ~args:
        [
          ("flow", Mcs_obs.Events.Str t.flow);
          ("phase", Mcs_obs.Events.Str phase);
          ("note", Mcs_obs.Events.Str note);
        ];
  record t
    (Diag.warning
       ~data:[ ("step", note); ("rung", phase) ]
       ~code:Diag.Degraded ~phase "%s" note)

let degraded t = List.rev t.degraded_steps

let phase t name ?artifact f =
  let phase_id = t.flow ^ "." ^ name in
  M.incr m_phases;
  let guarded () =
    try f () with
    | Invalid_argument m | Failure m ->
        Error (Diag.error ~code:Diag.Internal ~phase:phase_id "%s" m)
    | Mcs_resilience.Budget.Out_of_budget e ->
        Error
          (Diag.error ~code:Diag.Exhausted ~phase:phase_id "%s"
             (Mcs_resilience.Budget.message e))
  in
  match Mcs_obs.Trace.with_span ("flow." ^ phase_id) guarded with
  | Error d -> Error d
  | Ok v -> (
      match artifact with
      | None -> Ok v
      | Some to_artifact -> (
          let a = lazy (to_artifact v) in
          (match t.dump with
          | Some dump -> dump ~phase:phase_id (Lazy.force a)
          | None -> ());
          match (t.lvl, t.checker) with
          | Off, _ | _, None -> Ok v
          | (Warn | Strict), Some check ->
              let ds = check ~phase:phase_id (Lazy.force a) in
              let errs = List.filter Diag.is_error ds in
              if errs <> [] then M.incr m_violations ~n:(List.length errs);
              List.iter (record t) ds;
              if t.lvl = Strict && errs <> [] then begin
                t.failed_check <- true;
                M.incr m_aborts;
                Error (List.hd errs)
              end
              else Ok v))

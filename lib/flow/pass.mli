(** The pass manager: every flow phase runs through {!phase}, which gives
    it a {!Mcs_obs} span and counter automatically, folds recoverable
    raises ([Invalid_argument]/[Failure], and
    {!Mcs_resilience.Budget.Out_of_budget} as a [Diag.Exhausted]) into
    {!Diag.t} errors, offers the
    phase's artifact to an injected checker (and, under {!Strict}, aborts
    the flow on the first violation), and optionally dumps the artifact.

    The checker is {e injected} (typically {!Mcs_check}'s artifact
    checker): [Mcs_flow] itself has no opinion about legality, so the
    dependency points strictly from the checker to the flows. *)

(** How much the injected checker is allowed to interfere. *)
type level =
  | Off  (** checker not invoked *)
  | Warn  (** violations recorded on the result's diagnostics *)
  | Strict  (** the first [Error]-severity violation aborts the flow *)

type 'a checker = phase:string -> 'a -> Diag.t list

type 'a t
(** Per-run pass state for a flow whose phases produce ['a] artifacts. *)

val create :
  ?level:level ->
  ?checker:'a checker ->
  ?dump:(phase:string -> 'a -> unit) ->
  flow:string ->
  unit ->
  'a t
(** [level] defaults to [Off]. *)

val level : _ t -> level

val phase :
  'a t ->
  string ->
  ?artifact:('b -> 'a) ->
  (unit -> ('b, Diag.t) result) ->
  ('b, Diag.t) result
(** [phase t name f] runs [f] under a span named [flow.<flow>.<name>].
    When [f] succeeds and [artifact] is given, the artifact is dumped (if a
    dumper was injected) and checked (per [level]).  A checker violation
    under [Strict] turns the phase's [Ok] into [Error] and marks
    {!check_failed}, so retry loops know to stop rather than try the next
    design point. *)

val attempt : _ t -> unit
(** Count one attempt (one retry-loop iteration). *)

val attempts : _ t -> int

val record : _ t -> Diag.t -> unit
(** Append a diagnostic to the run's collected list. *)

val diags : _ t -> Diag.t list
(** Collected diagnostics, in emission order. *)

val check_failed : _ t -> bool
(** True once a [Strict] checker violation aborted a phase. *)

val degrade : _ t -> phase:string -> string -> unit
(** Record one degradation-ladder step: the note joins {!degraded} and a
    [Warning]-severity [Diag.Degraded] diagnostic joins {!diags}. *)

val degraded : _ t -> string list
(** Degradation steps taken, in emission order. *)

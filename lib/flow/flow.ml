open Mcs_cdfg
module C = Mcs_connect.Connection
module H = Mcs_connect.Heuristic
module R = Mcs_connect.Reassign
module LS = Mcs_sched.List_sched
module Sched = Mcs_sched.Schedule
module SP = Mcs_core.Simple_part
module SB = Mcs_core.Subbus
module Budget = Mcs_resilience.Budget

type name = Ch3 | Ch4 | Ch5 | Ch6

let all = [ Ch3; Ch4; Ch5; Ch6 ]

let name_to_string = function
  | Ch3 -> "ch3"
  | Ch4 -> "ch4"
  | Ch5 -> "ch5"
  | Ch6 -> "ch6"

let name_of_string = function
  | "ch3" -> Ok Ch3
  | "ch4" -> Ok Ch4
  | "ch5" -> Ok Ch5
  | "ch6" -> Ok Ch6
  | s -> Error (Printf.sprintf "unknown flow %S (ch3|ch4|ch5|ch6)" s)

type spec = {
  tag : string;
  cdfg : Cdfg.t;
  mlib : Module_lib.t;
  cons : Constraints.t;
  rate : int;
  pipe_length : int option;
  mode : C.mode;
}

let spec_of_design ?pipe_length ?mode ~flow (d : Benchmarks.design) ~rate =
  let mode =
    match mode with
    | Some m -> m
    | None -> ( match flow with Ch6 -> C.Bidir | Ch3 | Ch4 | Ch5 -> C.Unidir)
  in
  let cons =
    match (flow, mode) with
    | Ch3, _ -> Benchmarks.constraints_for d ~rate
    | Ch6, _ -> Benchmarks.constraints_for_bidir d ~rate
    | _, C.Unidir -> Benchmarks.constraints_for d ~rate
    | _, C.Bidir -> Benchmarks.constraints_for_bidir d ~rate
  in
  {
    tag = d.Benchmarks.tag;
    cdfg = d.Benchmarks.cdfg;
    mlib = d.Benchmarks.mlib;
    cons;
    rate;
    pipe_length;
    mode;
  }

type policy = {
  budget : Budget.t;
  fallback : bool;
  exact_first : bool;
  refine : int;
}

let default_policy =
  {
    budget = Budget.unlimited;
    fallback = true;
    exact_first = false;
    refine = 0;
  }

type result = {
  flow : name;
  tag : string;
  rate : int;
  mode : C.mode;
  schedule : Sched.t;
  connection : Artifact.connection;
  pins : (int * int) list;
  fus : ((int * string) * int) list;
  pipe_length : int;
  static_pipe_length : int option;
  attempts : int;
  diags : Diag.t list;
  degraded : string list;
}

let pins_of ~n_partitions (c : Artifact.connection) =
  match c with
  | Artifact.Bundles links ->
      Mcs_connect.Pins.tally ~n_partitions
        (List.map
           (fun (b : SP.Theorem31.bundle) ->
             ((match b.owner with `Out q | `In q -> q), b.wires))
           links)
  | Artifact.Buses { conn; _ } -> Mcs_connect.Pins.of_connection conn
  | Artifact.Subbuses { buses; _ } ->
      Mcs_connect.Pins.tally ~n_partitions
        (List.concat_map (fun (rb : SB.real_bus) -> rb.ports) buses)

let fus_of_constraints cdfg mlib cons =
  List.concat_map
    (fun p ->
      List.filter_map
        (fun ty ->
          let n = Constraints.fu_count cons ~partition:p ~optype:ty in
          if n > 0 then Some ((p, ty), n) else None)
        (Module_lib.optypes mlib))
    (Mcs_util.Listx.range 1 (Cdfg.n_partitions cdfg + 1))

let pins_total r = Mcs_util.Listx.sum snd r.pins
let fus_total r = Mcs_util.Listx.sum snd r.fus
let clean r = not (List.exists Diag.is_error r.diags)
let is_degraded r = r.degraded <> []

let ( let* ) = Result.bind

let assemble ~flow (s : spec) ~schedule ~connection ~fus ~static_pipe_length =
  {
    flow;
    tag = s.tag;
    rate = s.rate;
    mode = s.mode;
    schedule;
    connection;
    pins = pins_of ~n_partitions:(Cdfg.n_partitions s.cdfg) connection;
    fus;
    pipe_length = Sched.pipe_length schedule;
    static_pipe_length;
    attempts = 0;
    (* filled in by [run] *)
    diags = [];
    degraded = [];
  }

let diag_of_ls_failure ~phase (f : LS.failure) =
  let code =
    match f.LS.kind with
    | LS.Exhausted _ -> Diag.Exhausted
    | LS.Horizon _ | LS.Deadline_missed _ | LS.Missing_fu _ ->
        Diag.Unschedulable
  in
  Diag.error ~code ~phase
    ~csteps:[ f.LS.at_cstep ]
    "scheduling failed at control step %d: %s" f.LS.at_cstep f.LS.reason

let is_exhausted (d : Diag.t) = d.Diag.code = Diag.Exhausted

(* The terminal rung shared by the resource-constrained flows: schedule
   without any communication hook (functional units and recursions only,
   which list scheduling handles in polynomial time), then give every
   transfer dedicated wires by the constructive proof of Theorem 3.1 and
   verify the result — conflict freedom by replay, pin usage against the
   budgets (the hook normally guarantees the latter; here nothing does). *)
let dedicated_bus_fallback pass ~flow (s : spec) =
  let fp = name_to_string flow in
  Pass.attempt pass;
  let* schedule =
    Pass.phase pass "schedule-fallback"
      ~artifact:(fun sch -> Artifact.Schedule sch)
      (fun () ->
        match LS.run s.cdfg s.mlib s.cons ~rate:s.rate () with
        | Ok sch -> Ok sch
        | Error f -> Error (diag_of_ls_failure ~phase:(fp ^ ".schedule-fallback") f))
  in
  let* links =
    Pass.phase pass "connect-fallback"
      ~artifact:(fun links -> Artifact.Connection (Artifact.Bundles links))
      (fun () ->
        let phase = fp ^ ".connect-fallback" in
        let links = SP.Theorem31.connect schedule in
        match SP.Theorem31.check schedule links with
        | Error m ->
            Error
              (Diag.error ~code:Diag.Connection_conflict ~phase
                 "Theorem 3.1 connection check failed: %s" m)
        | Ok () -> (
            let used =
              pins_of ~n_partitions:(Cdfg.n_partitions s.cdfg)
                (Artifact.Bundles links)
            in
            match
              List.filter (fun (p, n) -> n > Constraints.pins s.cons p) used
            with
            | [] -> Ok links
            | over ->
                Error
                  (Diag.error ~code:Diag.Pin_budget_overflow ~phase
                     ~partitions:(List.map fst over)
                     "dedicated-bus fallback needs more pins than budgeted \
                      on partition(s) %s"
                     (String.concat ", "
                        (List.map (fun (p, _) -> string_of_int p) over)))))
  in
  Ok
    (assemble ~flow s ~schedule ~connection:(Artifact.Bundles links)
       ~fus:(fus_of_constraints s.cdfg s.mlib s.cons)
       ~static_pipe_length:None)

(* ---- Chapter 3: simple partitioning ---- *)

let run_ch3 pass policy (s : spec) =
  Pass.attempt pass;
  let* () =
    Pass.phase pass "validate" (fun () ->
        match SP.violations s.cdfg with
        | [] -> Ok ()
        | v :: _ ->
            Error
              (Diag.error ~code:Diag.Invalid_input ~phase:"ch3.validate"
                 "partitioning is not simple: %s" v))
  in
  let scheduled =
    Pass.phase pass "schedule"
      ~artifact:(fun sch -> Artifact.Schedule sch)
      (fun () ->
        let io_hook =
          SP.hook ~budget:policy.budget s.cdfg s.cons ~rate:s.rate
        in
        match
          LS.run ~budget:policy.budget s.cdfg s.mlib s.cons ~rate:s.rate
            ~io_hook ()
        with
        | Ok sch -> Ok sch
        | Error f -> Error (diag_of_ls_failure ~phase:"ch3.schedule" f))
  in
  match scheduled with
  | Error d when is_exhausted d && policy.fallback && not (Pass.check_failed pass) ->
      (* Ladder: the pin-allocation ILP ran out of budget.  Schedule
         without the checker, then let Theorem 3.1 construct and verify
         the connection — checked, or a typed diagnostic. *)
      Pass.degrade pass ~phase:"ch3.schedule"
        "pin-allocation ILP budget exhausted: rescheduled without the \
         checker, dedicated buses by Theorem 3.1";
      dedicated_bus_fallback pass ~flow:Ch3 s
  | Error d -> Error d
  | Ok schedule ->
      let* links =
        Pass.phase pass "connect"
          ~artifact:(fun links -> Artifact.Connection (Artifact.Bundles links))
          (fun () ->
            let links = SP.Theorem31.connect schedule in
            match SP.Theorem31.check schedule links with
            | Ok () -> Ok links
            | Error m ->
                Error
                  (Diag.error ~code:Diag.Connection_conflict
                     ~phase:"ch3.connect"
                     "Theorem 3.1 connection check failed: %s" m))
      in
      Ok
        (assemble ~flow:Ch3 s ~schedule ~connection:(Artifact.Bundles links)
           ~fus:(fus_of_constraints s.cdfg s.mlib s.cons)
           ~static_pipe_length:None)

(* ---- Chapter 4: connection synthesis before scheduling ---- *)

let run_ch4 pass policy (s : spec) =
  let budget = policy.budget in
  (* Shared tail: dynamic-reassignment scheduling over a synthesized
     connection, static baseline, assembly. *)
  let finish conn initial =
    let dyn = R.create ~budget s.cdfg conn ~rate:s.rate ~initial ~dynamic:true in
    let* schedule =
      Pass.phase pass "schedule"
        ~artifact:(fun sch -> Artifact.Schedule sch)
        (fun () ->
          match
            LS.run ~budget s.cdfg s.mlib s.cons ~rate:s.rate
              ~io_hook:(R.hook dyn) ()
          with
          | Ok sch -> Ok sch
          | Error f -> Error (diag_of_ls_failure ~phase:"ch4.schedule" f))
    in
    (* Paper's comparison baseline: same connection, static assignment. *)
    let static_pipe_length =
      Mcs_obs.Trace.with_span "flow.ch4.baseline" (fun () ->
          let st = R.create ~budget s.cdfg conn ~rate:s.rate ~initial ~dynamic:false in
          match
            LS.run ~budget s.cdfg s.mlib s.cons ~rate:s.rate
              ~io_hook:(R.hook st) ()
          with
          | Ok sch -> Some (Sched.pipe_length sch)
          | Error _ | (exception Invalid_argument _) -> None
          | exception Budget.Out_of_budget _ -> None)
    in
    let connection =
      Artifact.Buses
        {
          conn;
          initial;
          assignment = R.final_assignment dyn;
          allocation = R.allocation_table dyn;
        }
    in
    Ok
      (assemble ~flow:Ch4 s ~schedule ~connection
         ~fus:(fus_of_constraints s.cdfg s.mlib s.cons)
         ~static_pipe_length)
  in
  (* Top rung (opt-in): the exact ILP formulation of §4.1.1. *)
  let attempt_exact () =
    Pass.attempt pass;
    let* conn, assignment =
      Pass.phase pass "connect-exact"
        ~artifact:(fun (conn, assignment) ->
          Artifact.Connection
            (Artifact.Buses
               { conn; initial = assignment; assignment; allocation = [] }))
        (fun () ->
          let phase = "ch4.connect-exact" in
          match
            Mcs_connect.Ilp_gen.Ch4.solve ~budget s.cdfg s.cons ~rate:s.rate
              ~mode:s.mode ~max_buses:s.rate
          with
          | `Exhausted e ->
              Error
                (Diag.error ~code:Diag.Exhausted ~phase "exact ILP: %s"
                   (Budget.message e))
          | `Unsat ->
              Error
                (Diag.error ~code:Diag.No_connection ~phase
                   "exact ILP: no bus assignment satisfies the constraints")
          | `Unknown ->
              Error
                (Diag.error ~code:Diag.No_connection ~phase
                   "exact ILP: solver gave up before deciding")
          | `Sat (assign, _pins) ->
              (* Materialize the model's bus indices as a connection. *)
              let conn =
                C.create s.mode ~n_partitions:(Cdfg.n_partitions s.cdfg)
              in
              let handles = Hashtbl.create 8 in
              let assignment =
                List.map
                  (fun (op, b) ->
                    let h =
                      match Hashtbl.find_opt handles b with
                      | Some h -> h
                      | None ->
                          let h = C.new_bus conn in
                          Hashtbl.add handles b h;
                          h
                    in
                    C.widen_for conn ~bus:h ~src:(Cdfg.io_src s.cdfg op)
                      ~dst:(Cdfg.io_dst s.cdfg op)
                      ~width:(Cdfg.io_width s.cdfg op);
                    (op, h))
                  assign
              in
              Ok (conn, assignment))
    in
    finish conn assignment
  in
  let attempt_cap cap =
    Pass.attempt pass;
    let* res =
      Pass.phase pass "connect"
        ~artifact:(fun (r : H.result) ->
          Artifact.Connection
            (Artifact.Buses
               {
                 conn = r.H.conn;
                 initial = r.H.assign;
                 assignment = r.H.assign;
                 allocation = [];
               }))
        (fun () ->
          match
            H.search ~budget s.cdfg s.cons ~rate:s.rate ~mode:s.mode
              ~slot_cap:cap ~branching:2 ()
          with
          | Ok r -> Ok r
          | Error (H.Exhausted _ as e) ->
              Error
                (Diag.error ~code:Diag.Exhausted ~phase:"ch4.connect" "%s"
                   (H.error_message e))
          | Error (H.Infeasible as e) ->
              Error
                (Diag.error ~code:Diag.No_connection ~phase:"ch4.connect" "%s"
                   (H.error_message e)))
    in
    finish res.H.conn res.H.assign
  in
  (* The first (loosest-cap) failure names the real obstacle; lower-cap
     retries only trade pins for bandwidth.  Budget exhaustion anywhere in
     the sweep ends it: later caps would only spend budget that is gone. *)
  let rec try_cap cap first =
    if cap < 1 then
      Error
        (match first with
        | Some d ->
            Diag.error ~code:d.Diag.code ~phase:"ch4"
              "no schedulable interchip connection found (first: %s)"
              d.Diag.message
        | None ->
            Diag.error ~code:Diag.No_connection ~phase:"ch4"
              "no schedulable interchip connection found")
    else
      match attempt_cap cap with
      | Ok r -> Ok r
      | Error d ->
          if Pass.check_failed pass then Error d
          else if is_exhausted d then
            if policy.fallback then begin
              Pass.degrade pass ~phase:"ch4.connect"
                "heuristic connection search budget exhausted: dedicated \
                 buses by Theorem 3.1";
              dedicated_bus_fallback pass ~flow:Ch4 s
            end
            else Error d
          else try_cap (cap - 1) (Some (Option.value first ~default:d))
  in
  let heuristic () = try_cap s.rate None in
  if not policy.exact_first then heuristic ()
  else
    match attempt_exact () with
    | Ok r -> Ok r
    | Error d when Pass.check_failed pass -> Error d
    | Error d when is_exhausted d && not policy.fallback -> Error d
    | Error d ->
        Pass.degrade pass ~phase:"ch4.connect-exact"
          (Printf.sprintf "exact ILP rung failed (%s): heuristic search"
             (Diag.code_to_string d.Diag.code));
        heuristic ()

(* ---- Chapter 5: scheduling before connection synthesis ---- *)

let run_ch5 pass policy (s : spec) =
  Pass.attempt pass;
  let pl =
    match s.pipe_length with
    | Some pl -> pl
    | None -> Timing.critical_path_csteps s.cdfg s.mlib
  in
  let scheduled =
    Pass.phase pass "schedule"
      ~artifact:(fun sch -> Artifact.Schedule sch)
      (fun () ->
        match
          Mcs_sched.Fds.run ~budget:policy.budget s.cdfg s.mlib ~rate:s.rate
            ~pipe_length:pl ()
        with
        | Ok sch -> Ok sch
        | Error e ->
            let code =
              match e with
              | Mcs_sched.Fds.Exhausted _ -> Diag.Exhausted
              | Mcs_sched.Fds.Infeasible _
              | Mcs_sched.Fds.Chaining_overflow _ ->
                  Diag.Unschedulable
            in
            Error
              (Diag.error ~code ~phase:"ch5.schedule" "%s"
                 (Mcs_sched.Fds.error_message s.cdfg e)))
  in
  let* schedule =
    match scheduled with
    | Ok sch -> Ok sch
    | Error d when is_exhausted d && policy.fallback && not (Pass.check_failed pass) ->
        (* Ladder: force-directed scheduling ran out of budget; list
           scheduling under the same resource tables is the cheap rung. *)
        Pass.degrade pass ~phase:"ch5.schedule"
          "force-directed scheduling budget exhausted: list scheduling";
        Pass.attempt pass;
        Pass.phase pass "schedule-fallback"
          ~artifact:(fun sch -> Artifact.Schedule sch)
          (fun () ->
            match LS.run s.cdfg s.mlib s.cons ~rate:s.rate () with
            | Ok sch -> Ok sch
            | Error f ->
                Error (diag_of_ls_failure ~phase:"ch5.schedule-fallback" f))
    | Error d -> Error d
  in
  let* conn, assignment =
    Pass.phase pass "connect"
      ~artifact:(fun (conn, assignment) ->
        Artifact.Connection
          (Artifact.Buses
             { conn; initial = assignment; assignment; allocation = [] }))
      (fun () ->
        let cls =
          try Mcs_core.Post_connect.cliques ~budget:policy.budget schedule ~mode:s.mode
          with Budget.Out_of_budget _ when policy.fallback ->
            (* Ladder: keep the unmerged supernodes — every one a valid
               clique, just more buses (and pins) than the merged optimum. *)
            Pass.degrade pass ~phase:"ch5.connect"
              "clique-merging budget exhausted: unmerged supernode cliques";
            Mcs_core.Post_connect.cliques_trivial schedule
        in
        Ok (Mcs_core.Post_connect.connection_of_cliques s.cdfg ~mode:s.mode cls))
  in
  Ok
    (assemble ~flow:Ch5 s ~schedule
       ~connection:
         (Artifact.Buses
            { conn; initial = assignment; assignment; allocation = [] })
       ~fus:(Mcs_sched.Fds.fu_requirements schedule)
       ~static_pipe_length:None)

(* ---- Chapter 6: sub-bus sharing ---- *)

let run_ch6 pass policy (s : spec) =
  let budget = policy.budget in
  let attempt_cap cap =
    Pass.attempt pass;
    let* ra =
      Pass.phase pass "connect"
        ~artifact:(fun (real, assignment) ->
          Artifact.Connection
            (Artifact.Subbuses
               {
                 buses = real;
                 initial = assignment;
                 assignment;
                 allocation = [];
               }))
        (fun () ->
          match SB.search ~budget s.cdfg s.cons ~rate:s.rate ~slot_cap:cap () with
          | Ok ra -> Ok ra
          | Error m ->
              Error
                (Diag.error ~code:Diag.No_connection ~phase:"ch6.connect" "%s"
                   m))
    in
    let* t =
      Pass.phase pass "schedule"
        ~artifact:(fun (t : SB.t) -> Artifact.Schedule t.SB.schedule)
        (fun () ->
          match
            SB.schedule_over ~budget s.cdfg s.mlib s.cons ~rate:s.rate
              ~dynamic:true ra
          with
          | Ok t -> Ok t
          | Error m ->
              Error
                (Diag.error ~code:Diag.Unschedulable ~phase:"ch6.schedule" "%s"
                   m))
    in
    let static_pipe_length =
      Mcs_obs.Trace.with_span "flow.ch6.baseline" (fun () ->
          match
            SB.schedule_over ~budget s.cdfg s.mlib s.cons ~rate:s.rate
              ~dynamic:false ra
          with
          | Ok t' -> Some (Sched.pipe_length t'.SB.schedule)
          | Error _ | (exception Invalid_argument _) -> None
          | exception Budget.Out_of_budget _ -> None)
    in
    Ok { t with SB.static_pipe_length }
  in
  (* Pin minimization is Chapter 6's whole point: sweep the per-bus value
     cap and keep the schedulable result with fewest pins (shorter pipe
     breaks ties) — unless a Strict checker aborted, which ends the run.
     Budget exhaustion truncates the sweep (remaining caps would only
     spend budget that is gone) but keeps what it already produced. *)
  let rec sweep cap acc =
    if cap < 1 then Ok (acc, None)
    else
      match attempt_cap cap with
      | Ok t -> sweep (cap - 1) (t :: acc)
      | Error d ->
          if Pass.check_failed pass then Error d
          else if is_exhausted d then Ok (acc, Some d)
          else sweep (cap - 1) acc
  in
  let* candidates, exhausted = sweep s.rate [] in
  (match exhausted with
  | Some _ when candidates <> [] ->
      Pass.degrade pass ~phase:"ch6.connect"
        "slot-cap sweep budget exhausted: kept the best completed cap"
  | _ -> ());
  let total t = Mcs_util.Listx.sum snd t.SB.pins in
  match
    Mcs_util.Listx.min_by
      (fun t -> (1000 * total t) + Sched.pipe_length t.SB.schedule)
      candidates
  with
  | None -> (
      match exhausted with
      | Some d when policy.fallback ->
          Pass.degrade pass ~phase:"ch6.connect"
            (Printf.sprintf
               "sub-bus search budget exhausted (%s): dedicated buses by \
                Theorem 3.1"
               d.Diag.message);
          dedicated_bus_fallback pass ~flow:Ch6 s
      | Some d -> Error d
      | None ->
          Error
            (Diag.error ~code:Diag.No_connection ~phase:"ch6"
               "no schedulable sub-bus connection found at any slot cap"))
  | Some best ->
      Ok
        (assemble ~flow:Ch6 s ~schedule:best.SB.schedule
           ~connection:
             (Artifact.Subbuses
                {
                  buses = best.SB.real_buses;
                  initial = best.SB.initial_assignment;
                  assignment = best.SB.final_assignment;
                  allocation = best.SB.allocation;
                })
           ~fus:(fus_of_constraints s.cdfg s.mlib s.cons)
           ~static_pipe_length:best.SB.static_pipe_length)

(* ---- the unified entry point ---- *)

let m_runs = Mcs_obs.Metrics.counter "flow.runs"
let m_final_violations = Mcs_obs.Metrics.counter "flow.check.violations"

let run ?(level = Pass.Off) ?checker ?check_result ?dump
    ?(policy = default_policy) name spec =
  Mcs_obs.Metrics.incr m_runs;
  let pass = Pass.create ~level ?checker ?dump ~flow:(name_to_string name) () in
  let drive =
    match name with
    | Ch3 -> run_ch3
    | Ch4 -> run_ch4
    | Ch5 -> run_ch5
    | Ch6 -> run_ch6
  in
  let guarded () =
    (* The flow-level safety net of the resilience invariant: whatever a
       solver lets escape, the caller sees a typed diagnostic. *)
    try drive pass policy spec
    with Budget.Out_of_budget e ->
      Error
        (Diag.error ~code:Diag.Exhausted
           ~phase:(name_to_string name)
           "%s" (Budget.message e))
  in
  match
    Mcs_obs.Log.with_field "flow" (name_to_string name) (fun () ->
        Mcs_obs.Trace.with_span ("flow." ^ name_to_string name) guarded)
  with
  | Error d -> Error d
  | Ok r -> (
      let r =
        {
          r with
          attempts = Pass.attempts pass;
          degraded = Pass.degraded pass;
        }
      in
      let final_diags =
        match (level, check_result) with
        | Pass.Off, _ | _, None -> []
        | (Pass.Warn | Pass.Strict), Some check ->
            let ds = check r in
            let errs = List.length (List.filter Diag.is_error ds) in
            if errs > 0 then Mcs_obs.Metrics.incr m_final_violations ~n:errs;
            ds
      in
      let diags = Pass.diags pass @ final_diags in
      let r = { r with diags } in
      match level with
      | Pass.Strict when not (clean r) ->
          Error (List.find Diag.is_error diags)
      | _ -> Ok r)

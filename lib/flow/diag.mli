(** Typed diagnostics for the synthesis flows.

    Every recoverable failure — an input a flow rejects, a phase that finds
    no solution, a static-analysis violation {!Mcs_check} detects — is one
    of these records instead of a bare string or a [Failure]/
    [Invalid_argument] raise.  A diagnostic names the phase that produced
    it, a machine-matchable {!code}, and the offending operations, control
    steps and partitions when they are known, so callers (CLI, engine,
    tests) can route, count and assert on failures without parsing prose. *)

open Mcs_cdfg

type severity = Info | Warning | Error

type code =
  | Invalid_input  (** the design violates a flow's precondition *)
  | Unschedulable  (** no schedule exists under the given resources *)
  | No_connection  (** connection synthesis found no bus structure *)
  | Precedence_violation  (** schedule breaks a data dependence *)
  | Rate_violation  (** initiation-rate (group-wheel) overload *)
  | Fu_overuse  (** more functional units used than allocated *)
  | Pin_budget_overflow  (** a partition exceeds its pin budget *)
  | Connection_conflict  (** Theorem 3.1 replay found a conflict *)
  | Bus_conflict  (** two values on one bus in one control step *)
  | Subbus_misfit  (** a transfer does not fit its sub-bus slice *)
  | Clique_invalid  (** incompatible operations share a clique *)
  | Result_mismatch  (** a result field disagrees with its artifacts *)
  | Exhausted  (** a solver ran out of its {!Mcs_resilience.Budget} *)
  | Degraded  (** a degradation-ladder step was taken (severity Warning) *)
  | Poisoned
      (** the request repeatedly killed its executor and was quarantined
          by the server's circuit breaker instead of retried forever *)
  | Oversized  (** a protocol frame exceeded the server's size bound *)
  | Internal  (** an invariant failure folded into a diagnostic *)

type t = {
  severity : severity;
  code : code;
  phase : string;  (** e.g. ["ch4.connect"], ["ch5.final"] *)
  message : string;
  ops : Types.op_id list;  (** offending operations, when known *)
  csteps : int list;  (** offending control steps, when known *)
  partitions : int list;  (** offending partitions, when known *)
  data : (string * string) list;
      (** free-form machine-readable payload.  [Degraded] diagnostics
          carry [("step", <ladder note>)] and [("rung", <phase>)] so
          consumers (the refinement driver, JSON readers) can see which
          fallback fired without parsing prose *)
}

val error :
  ?ops:Types.op_id list ->
  ?csteps:int list ->
  ?partitions:int list ->
  ?data:(string * string) list ->
  code:code ->
  phase:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val warning :
  ?ops:Types.op_id list ->
  ?csteps:int list ->
  ?partitions:int list ->
  ?data:(string * string) list ->
  code:code ->
  phase:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val info :
  ?ops:Types.op_id list ->
  ?csteps:int list ->
  ?partitions:int list ->
  ?data:(string * string) list ->
  code:code ->
  phase:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val is_error : t -> bool

val severity_to_string : severity -> string
val code_to_string : code -> string

val message : t -> string
(** ["phase: message [code]"] — the one-line rendering used where a plain
    string is still needed (engine outcomes, legacy callers). *)

val pp : ?cdfg:Cdfg.t -> Format.formatter -> t -> unit
(** One line per diagnostic; with [cdfg], offending operations print by
    name rather than id. *)

val to_json : t -> Mcs_obs.Report_json.t

open Mcs_cdfg
module J = Mcs_obs.Report_json

type severity = Info | Warning | Error

type code =
  | Invalid_input
  | Unschedulable
  | No_connection
  | Precedence_violation
  | Rate_violation
  | Fu_overuse
  | Pin_budget_overflow
  | Connection_conflict
  | Bus_conflict
  | Subbus_misfit
  | Clique_invalid
  | Result_mismatch
  | Exhausted
  | Degraded
  | Poisoned
  | Oversized
  | Internal

type t = {
  severity : severity;
  code : code;
  phase : string;
  message : string;
  ops : Types.op_id list;
  csteps : int list;
  partitions : int list;
  data : (string * string) list;
}

let make severity ?(ops = []) ?(csteps = []) ?(partitions = []) ?(data = [])
    ~code ~phase fmt =
  Format.kasprintf
    (fun message ->
      { severity; code; phase; message; ops; csteps; partitions; data })
    fmt

let error ?ops ?csteps ?partitions ?data ~code ~phase fmt =
  make Error ?ops ?csteps ?partitions ?data ~code ~phase fmt

let warning ?ops ?csteps ?partitions ?data ~code ~phase fmt =
  make Warning ?ops ?csteps ?partitions ?data ~code ~phase fmt

let info ?ops ?csteps ?partitions ?data ~code ~phase fmt =
  make Info ?ops ?csteps ?partitions ?data ~code ~phase fmt

let is_error d = d.severity = Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let code_to_string = function
  | Invalid_input -> "invalid-input"
  | Unschedulable -> "unschedulable"
  | No_connection -> "no-connection"
  | Precedence_violation -> "precedence-violation"
  | Rate_violation -> "rate-violation"
  | Fu_overuse -> "fu-overuse"
  | Pin_budget_overflow -> "pin-budget-overflow"
  | Connection_conflict -> "connection-conflict"
  | Bus_conflict -> "bus-conflict"
  | Subbus_misfit -> "subbus-misfit"
  | Clique_invalid -> "clique-invalid"
  | Result_mismatch -> "result-mismatch"
  | Exhausted -> "exhausted"
  | Degraded -> "degraded"
  | Poisoned -> "poisoned"
  | Oversized -> "oversized"
  | Internal -> "internal"

let message d =
  Printf.sprintf "%s: %s [%s]" d.phase d.message (code_to_string d.code)

let pp ?cdfg ppf d =
  Format.fprintf ppf "%s[%s] %s: %s"
    (match d.severity with
    | Error -> "error"
    | Warning -> "warning"
    | Info -> "info")
    (code_to_string d.code) d.phase d.message;
  (match d.ops with
  | [] -> ()
  | ops ->
      let name op =
        match cdfg with
        | Some g -> Cdfg.name g op
        | None -> "#" ^ string_of_int op
      in
      Format.fprintf ppf " (ops: %s)" (String.concat " " (List.map name ops)));
  (match d.csteps with
  | [] -> ()
  | cs ->
      Format.fprintf ppf " (csteps: %s)"
        (String.concat " " (List.map string_of_int cs)));
  (match d.partitions with
  | [] -> ()
  | ps ->
      Format.fprintf ppf " (partitions: %s)"
        (String.concat " " (List.map string_of_int ps)));
  match d.data with
  | [] -> ()
  | kvs ->
      Format.fprintf ppf " (%s)"
        (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs))

let to_json d =
  let ints name = function
    | [] -> []
    | xs -> [ (name, J.Arr (List.map (fun i -> J.Int i) xs)) ]
  in
  J.Obj
    ([
       ("severity", J.Str (severity_to_string d.severity));
       ("code", J.Str (code_to_string d.code));
       ("phase", J.Str d.phase);
       ("message", J.Str d.message);
     ]
    @ ints "ops" d.ops @ ints "csteps" d.csteps
    @ ints "partitions" d.partitions
    @
    match d.data with
    | [] -> []
    | kvs -> [ ("data", J.Obj (List.map (fun (k, v) -> (k, J.Str v)) kvs)) ])

open Mcs_cdfg
module J = Mcs_obs.Report_json
module SP = Mcs_core.Simple_part
module SB = Mcs_core.Subbus

type connection =
  | Bundles of SP.Theorem31.bundle list
  | Buses of {
      conn : Mcs_connect.Connection.t;
      initial : (Types.op_id * int) list;
      assignment : (Types.op_id * int) list;
      allocation : ((int * int) * (string * int * Types.op_id list)) list;
    }
  | Subbuses of {
      buses : SB.real_bus list;
      initial : (Types.op_id * (int * SB.sub)) list;
      assignment : (Types.op_id * (int * SB.sub)) list;
      allocation : ((int * SB.sub * int) * (string * int * Types.op_id list)) list;
    }

type t =
  | Schedule of Mcs_sched.Schedule.t
  | Connection of connection
  | Pins of (int * int) list

let kind = function
  | Schedule _ -> "schedule"
  | Connection _ -> "connection"
  | Pins _ -> "pins"

let slice_to_string = function
  | SB.Lo -> "lo"
  | SB.Hi -> "hi"
  | SB.Whole -> "whole"

let pins_json pins =
  J.Arr
    (List.map
       (fun (p, n) -> J.Obj [ ("partition", J.Int p); ("pins", J.Int n) ])
       pins)

let to_json cdfg = function
  | Schedule s ->
      J.Obj
        [
          ("kind", J.Str "schedule");
          ("rate", J.Int (Mcs_sched.Schedule.rate s));
          ("pipe_length", J.Int (Mcs_sched.Schedule.pipe_length s));
          ( "ops",
            J.Arr
              (List.filter_map
                 (fun op ->
                   if Mcs_sched.Schedule.is_scheduled s op then
                     Some
                       (J.Obj
                          [
                            ("op", J.Str (Cdfg.name cdfg op));
                            ("cstep", J.Int (Mcs_sched.Schedule.cstep s op));
                          ])
                   else None)
                 (Cdfg.ops cdfg)) );
        ]
  | Pins pins -> J.Obj [ ("kind", J.Str "pins"); ("pins", pins_json pins) ]
  | Connection (Bundles links) ->
      J.Obj
        [
          ("kind", J.Str "bundles");
          ( "bundles",
            J.Arr
              (List.map
                 (fun (b : SP.Theorem31.bundle) ->
                   J.Obj
                     [
                       ( "owner",
                         J.Str
                           (match b.owner with
                           | `Out p -> Printf.sprintf "out:%d" p
                           | `In p -> Printf.sprintf "in:%d" p) );
                       ( "counterparts",
                         J.Arr (List.map (fun p -> J.Int p) b.counterparts) );
                       ("wires", J.Int b.wires);
                     ])
                 links) );
        ]
  | Connection (Buses { conn; assignment; _ }) ->
      J.Obj
        [
          ("kind", J.Str "buses");
          ("n_buses", J.Int (Mcs_connect.Connection.n_buses conn));
          ( "assignment",
            J.Arr
              (List.map
                 (fun (op, bus) ->
                   J.Obj
                     [ ("op", J.Str (Cdfg.name cdfg op)); ("bus", J.Int bus) ])
                 assignment) );
        ]
  | Connection (Subbuses { buses; assignment; _ }) ->
      J.Obj
        [
          ("kind", J.Str "subbuses");
          ( "buses",
            J.Arr
              (List.map
                 (fun (rb : SB.real_bus) ->
                   J.Obj
                     [
                       ("width", J.Int rb.width);
                       ( "split_at",
                         match rb.split_at with
                         | Some w -> J.Int w
                         | None -> J.Null );
                     ])
                 buses) );
          ( "assignment",
            J.Arr
              (List.map
                 (fun (op, (bus, slice)) ->
                   J.Obj
                     [
                       ("op", J.Str (Cdfg.name cdfg op));
                       ("bus", J.Int bus);
                       ("slice", J.Str (slice_to_string slice));
                     ])
                 assignment) );
        ]

(** Typed solver event journal: a process-wide, bounded ring buffer.

    Where {!Metrics} answers "how many" and {!Trace} answers "how long",
    the event bus answers "what happened, in what order": branch-and-bound
    node opens and closes, simplex pivot batches, force-directed passes,
    Hungarian augments, cache hits, pool forks and joins, degradation-ladder
    steps, budget exhaustion.  Emission is off by default — a disabled
    [emit] is one ref read, so hot solver loops guard allocation of the
    argument list behind {!on} and pay nothing in normal runs.

    When enabled, events land in a fixed-capacity ring (default 4096
    slots): once full, new events overwrite the oldest, so the journal
    always holds the most recent history — the part a post-mortem of an
    [Exhausted] or degraded run needs — at bounded memory.  Subscribers
    ({!subscribe}) additionally see every event live; the Chrome-trace
    exporter in [Mcs_prof] uses this to record more than one ring's
    worth. *)

type arg = Int of int | Str of string | Float of float | Bool of bool

type t = {
  seq : int;  (** emission order, monotone per process *)
  ts : float;  (** [Unix.gettimeofday] at emission *)
  cat : string;  (** solver family: "bb", "simplex", "fds", ... *)
  name : string;  (** event kind within the family: "node.open", ... *)
  args : (string * arg) list;
}

val on : unit -> bool
(** True when emission is enabled.  Guard argument-list construction with
    it on hot paths: [if Events.on () then Events.emit ...]. *)

val set_enabled : bool -> unit

val emit : ?args:(string * arg) list -> cat:string -> string -> unit
(** [emit ~cat name] appends one event (no-op when disabled). *)

val recent : unit -> t list
(** The ring's current contents, oldest first. *)

val emitted : unit -> int
(** Total events emitted since the last {!clear} (including overwritten). *)

val dropped : unit -> int
(** How many of {!emitted} were overwritten by newer events. *)

val clear : unit -> unit
(** Empty the ring and restart the sequence counter. *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Resize the ring (contents are discarded).  Raises [Invalid_argument]
    on a non-positive capacity. *)

val subscribe : (t -> unit) -> unit
(** Register a live listener called on every emitted event, in
    subscription order, after the event is stored in the ring. *)

val clear_subscribers : unit -> unit

val arg_to_string : arg -> string
val pp : Format.formatter -> t -> unit

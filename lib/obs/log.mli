(** Leveled diagnostic logging for the synthesis libraries.

    Replaces the ad-hoc [Printf.eprintf] diagnostics: messages carry a
    level, go to stderr with a [\[mcs:level\]] prefix, and are discarded
    (without being formatted) when below the current threshold.

    The initial threshold is [Warn]; the [MCS_LOG] environment variable
    ([debug], [info], [warn], [error] or [quiet]) overrides it at program
    start, as does the legacy [MCS_DEBUG] variable (which maps to
    [Debug]).  The [--log-level] flag of [mcs-synth] calls [set_level]. *)

type level = Debug | Info | Warn | Error | Quiet

val set_level : level -> unit
val level : unit -> level

val level_of_string : string -> level option
val level_to_string : level -> string

val enabled : level -> bool
(** [enabled lvl] is true when a message at [lvl] would be printed.
    Guard expensive message construction with it. *)

val set_field : string -> string -> unit
(** [set_field k v] binds a structured context field printed as [k=v] on
    every subsequent line (between the level prefix and the message).
    Rebinding a key replaces its value.  The flow driver binds
    [flow=<name>]; forked pool workers bind [job=<hash>], so worker logs
    stay attributable after a crash. *)

val unset_field : string -> unit

val with_field : string -> string -> (unit -> 'a) -> 'a
(** Scoped {!set_field}: the previous context is restored on exit, even
    on exceptions. *)

val fields : unit -> (string * string) list
(** The active context fields, oldest binding first. *)

val debug : ('a, Format.formatter, unit) format -> 'a
val info : ('a, Format.formatter, unit) format -> 'a
val warn : ('a, Format.formatter, unit) format -> 'a
val error : ('a, Format.formatter, unit) format -> 'a

(** Nested timing spans over the synthesis phases.

    A span measures one dynamic extent ([with_span "simplex.solve" f]) and
    nests under whatever span is currently open.  Output goes to the
    configured sink:

    - [Off] (default): [with_span] is a tail call to its argument unless
      collection is on — no clock reads, no allocation;
    - [Tree ppf]: when a root span closes, its whole tree is printed as an
      indented summary with per-span wall times;
    - [Jsonl ppf]: each span is printed as one JSON object per line, at
      the moment it closes (children before parents).

    Independently of the sink, [set_collect true] accumulates per-name
    call counts and total wall time, which run reports read via
    [collected] — this is how the [--json] report learns the wall time
    per phase without requiring a trace sink.

    The sink honours the [MCS_TRACE] environment variable at program
    start: [tree] and [json] select the corresponding sink on stderr. *)

type sink = Off | Tree of Format.formatter | Jsonl of Format.formatter

(** One closed span, as seen by the exporter hook. *)
type span = {
  span_name : string;
  span_attrs : (string * string) list;
  span_depth : int;  (** nesting depth at open time (0 = root) *)
  span_t0 : float;  (** [Unix.gettimeofday] at open *)
  span_dur : float;  (** wall seconds *)
}

val set_sink : sink -> unit
val sink : unit -> sink

val set_hook : (span -> unit) option -> unit
(** [set_hook (Some f)] calls [f] on every span as it closes (children
    before parents), independently of the sink; spans are measured even
    when the sink is [Off].  The Chrome-trace exporter registers here.
    [set_hook None] removes the hook. *)

val set_collect : bool -> unit

val collected : unit -> (string * (int * float)) list
(** Per span name: (number of calls, total seconds), sorted by name. *)

val reset_collected : unit -> unit

val with_span :
  ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and attributes its wall time to [name].
    Exception-safe: the span closes (and is reported) even if [f]
    raises. *)

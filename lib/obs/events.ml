type arg = Int of int | Str of string | Float of float | Bool of bool

type t = {
  seq : int;
  ts : float;
  cat : string;
  name : string;
  args : (string * arg) list;
}

(* The bus is a fixed-capacity ring: [emit] overwrites the oldest slot
   once full, so a crashing or degrading run always keeps its most recent
   history — exactly the part a post-mortem needs — at O(capacity) memory
   no matter how long the solvers churn. *)
type ring = {
  mutable slots : t option array;
  mutable next : int; (* next write position *)
  mutable stored : int; (* total emits that landed in the ring *)
}

let default_capacity = 4096
let ring = { slots = Array.make default_capacity None; next = 0; stored = 0 }
let enabled_flag = ref false
let seq_counter = ref 0
let subscribers : (t -> unit) list ref = ref []

let on () = !enabled_flag

let set_enabled b = enabled_flag := b

let capacity () = Array.length ring.slots

let clear () =
  Array.fill ring.slots 0 (Array.length ring.slots) None;
  ring.next <- 0;
  ring.stored <- 0;
  seq_counter := 0

let set_capacity n =
  if n < 1 then invalid_arg "Events.set_capacity: capacity must be positive";
  ring.slots <- Array.make n None;
  ring.next <- 0;
  ring.stored <- 0

let subscribe f = subscribers := !subscribers @ [ f ]
let clear_subscribers () = subscribers := []

let emit ?(args = []) ~cat name =
  if !enabled_flag then begin
    let e = { seq = !seq_counter; ts = Unix.gettimeofday (); cat; name; args } in
    incr seq_counter;
    ring.slots.(ring.next) <- Some e;
    ring.next <- (ring.next + 1) mod Array.length ring.slots;
    ring.stored <- ring.stored + 1;
    List.iter (fun f -> f e) !subscribers
  end

let emitted () = ring.stored
let dropped () = max 0 (ring.stored - Array.length ring.slots)

(* Oldest-first: the ring's logical order is [next..end) ++ [0..next). *)
let recent () =
  let n = Array.length ring.slots in
  let collect lo hi acc =
    let rec go i acc =
      if i >= hi then acc
      else
        match ring.slots.(i) with
        | Some e -> go (i + 1) (e :: acc)
        | None -> go (i + 1) acc
    in
    go lo acc
  in
  List.rev (collect 0 ring.next (collect ring.next n []))

let arg_to_string = function
  | Int i -> string_of_int i
  | Str s -> s
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let pp ppf e =
  Format.fprintf ppf "%s.%s" e.cat e.name;
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%s" k (arg_to_string v))
    e.args

type arg = Int of int | Str of string | Float of float | Bool of bool

type t = {
  seq : int;
  ts : float;
  cat : string;
  name : string;
  args : (string * arg) list;
}

(* The bus is a fixed-capacity ring: [emit] overwrites the oldest slot
   once full, so a crashing or degrading run always keeps its most recent
   history — exactly the part a post-mortem needs — at O(capacity) memory
   no matter how long the solvers churn. *)
type ring = {
  mutable slots : t option array;
  mutable next : int; (* next write position *)
  mutable stored : int; (* total emits that landed in the ring *)
}

let default_capacity = 4096
let ring = { slots = Array.make default_capacity None; next = 0; stored = 0 }
let enabled_flag = ref false
let seq_counter = ref 0
let subscribers : (t -> unit) list ref = ref []

(* Server worker domains emit concurrently, so every ring/subscriber-list
   access is serialised.  The enabled check stays outside the lock: when
   the bus is off (the common case) [emit] must cost one load, and a
   stale read at the toggle boundary only gains or loses one event. *)
let ring_lock = Mutex.create ()

let locked f =
  Mutex.lock ring_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock ring_lock) f

let on () = !enabled_flag

let set_enabled b = enabled_flag := b

let capacity () = locked (fun () -> Array.length ring.slots)

let clear () =
  locked (fun () ->
      Array.fill ring.slots 0 (Array.length ring.slots) None;
      ring.next <- 0;
      ring.stored <- 0;
      seq_counter := 0)

let set_capacity n =
  if n < 1 then invalid_arg "Events.set_capacity: capacity must be positive";
  locked (fun () ->
      ring.slots <- Array.make n None;
      ring.next <- 0;
      ring.stored <- 0)

let subscribe f = locked (fun () -> subscribers := !subscribers @ [ f ])
let clear_subscribers () = locked (fun () -> subscribers := [])

let emit ?(args = []) ~cat name =
  if !enabled_flag then begin
    (* Subscribers run outside the lock: Chrome_trace's hook takes its
       own lock, and a subscriber may legitimately re-enter this module. *)
    let e, subs =
      locked (fun () ->
          let e =
            { seq = !seq_counter; ts = Unix.gettimeofday (); cat; name; args }
          in
          incr seq_counter;
          ring.slots.(ring.next) <- Some e;
          ring.next <- (ring.next + 1) mod Array.length ring.slots;
          ring.stored <- ring.stored + 1;
          (e, !subscribers))
    in
    List.iter (fun f -> f e) subs
  end

let emitted () = locked (fun () -> ring.stored)

let dropped () =
  locked (fun () -> max 0 (ring.stored - Array.length ring.slots))

(* Oldest-first: the ring's logical order is [next..end) ++ [0..next). *)
let recent () =
  locked (fun () ->
      let n = Array.length ring.slots in
      let collect lo hi acc =
        let rec go i acc =
          if i >= hi then acc
          else
            match ring.slots.(i) with
            | Some e -> go (i + 1) (e :: acc)
            | None -> go (i + 1) acc
        in
        go lo acc
      in
      List.rev (collect 0 ring.next (collect ring.next n [])))

let arg_to_string = function
  | Int i -> string_of_int i
  | Str s -> s
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let pp ppf e =
  Format.fprintf ppf "%s.%s" e.cat e.name;
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%s" k (arg_to_string v))
    e.args

type sink = Off | Tree of Format.formatter | Jsonl of Format.formatter

type node = {
  name : string;
  attrs : (string * string) list;
  depth : int;
  mutable t0 : float;
  mutable dur : float;
  mutable children : node list; (* reverse order while open *)
}

type span = {
  span_name : string;
  span_attrs : (string * string) list;
  span_depth : int;
  span_t0 : float;
  span_dur : float;
}

let current_sink = ref Off
let collect = ref false
let hook : (span -> unit) option ref = ref None

(* Each domain nests spans independently (the server's workers trace
   their own solver runs), so the open-span stack is domain-local state
   — one shared stack would interleave unrelated requests into a bogus
   tree.  The aggregate totals table stays shared and lock-protected. *)
let stack_key : node list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key
let totals : (string, int * float) Hashtbl.t = Hashtbl.create 32
let totals_lock = Mutex.create ()

let locked f =
  Mutex.lock totals_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock totals_lock) f

let set_sink s = current_sink := s
let sink () = !current_sink
let set_collect b = collect := b
let set_hook h = hook := h

let collected () =
  locked (fun () -> Hashtbl.fold (fun name v acc -> (name, v) :: acc) totals [])
  |> List.sort compare

let reset_collected () = locked (fun () -> Hashtbl.reset totals)

let record_total name dur =
  locked (fun () ->
      let n, t =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt totals name)
      in
      Hashtbl.replace totals name (n + 1, t +. dur))

let pp_attrs ppf attrs =
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) attrs

let rec print_tree ppf node =
  Format.fprintf ppf "%s%-*s %8.3f ms%a@,"
    (String.make (2 * node.depth) ' ')
    (max 1 (36 - (2 * node.depth)))
    node.name (1000.0 *. node.dur) pp_attrs node.attrs;
  List.iter (print_tree ppf) (List.rev node.children)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_jsonl ppf node =
  let attrs =
    match node.attrs with
    | [] -> ""
    | l ->
        Printf.sprintf ",\"attrs\":{%s}"
          (String.concat ","
             (List.map
                (fun (k, v) ->
                  Printf.sprintf "\"%s\":\"%s\"" (json_escape k)
                    (json_escape v))
                l))
  in
  Format.fprintf ppf "{\"span\":\"%s\",\"depth\":%d,\"dur_ms\":%.3f%s}@."
    (json_escape node.name) node.depth (1000.0 *. node.dur) attrs

let close_span node =
  let stack = stack () in
  (match !stack with
  | top :: rest when top == node -> stack := rest
  | _ -> stack := []);
  if !collect then record_total node.name node.dur;
  (match !hook with
  | None -> ()
  | Some f ->
      f
        {
          span_name = node.name;
          span_attrs = node.attrs;
          span_depth = node.depth;
          span_t0 = node.t0;
          span_dur = node.dur;
        });
  match !current_sink with
  | Off -> ()
  | Jsonl ppf -> emit_jsonl ppf node
  | Tree ppf ->
      (match !stack with
      | parent :: _ -> parent.children <- node :: parent.children
      | [] -> Format.fprintf ppf "@[<v>%a@]%!" print_tree node)

let with_span ?(attrs = []) name f =
  if !current_sink = Off && (not !collect) && Option.is_none !hook then f ()
  else begin
    let stack = stack () in
    let node =
      {
        name;
        attrs;
        depth = List.length !stack;
        t0 = 0.0;
        dur = 0.0;
        children = [];
      }
    in
    stack := node :: !stack;
    let t0 = Unix.gettimeofday () in
    node.t0 <- t0;
    Fun.protect
      ~finally:(fun () ->
        node.dur <- Unix.gettimeofday () -. t0;
        close_span node)
      f
  end

(* Allow turning tracing on without touching the command line, e.g. under
   `dune runtest` or the benchmark harness. *)
let () =
  match Sys.getenv_opt "MCS_TRACE" with
  | Some "tree" -> current_sink := Tree Format.err_formatter
  | Some "json" -> current_sink := Jsonl Format.err_formatter
  | _ -> ()

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* nan and infinities have no JSON spelling *)
      if Float.is_finite f then Buffer.add_string b (float_repr f)
      else Buffer.add_string b "null"
  | Str s -> escape b s
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit b v)
        l;
      Buffer.add_char b ']'
  | Obj l ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape b k;
          Buffer.add_char b ':';
          emit b v)
        l;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

let rec pp ppf = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v ->
      Format.pp_print_string ppf (to_string v)
  | Arr [] -> Format.pp_print_string ppf "[]"
  | Arr l ->
      Format.fprintf ppf "@[<v 2>[@,%a@]@,]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           pp)
        l
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj l ->
      let field ppf (k, v) =
        Format.fprintf ppf "%s: %a" (to_string (Str k)) pp v
      in
      Format.fprintf ppf "@[<v 2>{@,%a@]@,}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           field)
        l

(* --- parsing --- *)

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* Only the codepoints our printer emits (< 0x80). *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else fail "unsupported \\u escape";
              pos := !pos + 4;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let acc = ref [ parse_value () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                acc := parse_value () :: !acc;
                more ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          more ();
          Arr (List.rev !acc)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let acc = ref [ field () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                acc := field () :: !acc;
                more ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          more ();
          Obj (List.rev !acc)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse m -> Error m

(* --- accessors --- *)

let member key = function Obj l -> List.assoc_opt key l | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr l -> Some l | _ -> None

(* --- report builders --- *)

let metrics () =
  Obj
    (List.map
       (fun (name, v) ->
         let j =
           match (v : Metrics.value) with
           | Metrics.Counter c -> Int c
           | Metrics.Gauge g -> Float g
           | Metrics.Histogram { bounds; counts; sum; total } ->
               let quantile q =
                 match Metrics.histogram_quantile v q with
                 | Some est -> Float est
                 | None -> Null
               in
               Obj
                 [
                   ("count", Int total);
                   ("sum", Int sum);
                   ("p50", quantile 0.5);
                   ("p95", quantile 0.95);
                   ( "buckets",
                     Arr
                       (List.mapi
                          (fun i c ->
                            let le =
                              if i < Array.length bounds then
                                Int bounds.(i)
                              else Str "inf"
                            in
                            Obj [ ("le", le); ("count", Int c) ])
                          (Array.to_list counts)) );
                 ]
         in
         (name, j))
       (Metrics.snapshot ()))

let phases () =
  Arr
    (List.map
       (fun (name, (count, total)) ->
         Obj
           [
             ("name", Str name);
             ("count", Int count);
             ("total_s", Float total);
           ])
       (Trace.collected ()))

let run_report ~flow ~design ~rate ~status ?wall_s ?(result = []) () =
  let status_fields =
    match status with
    | `Ok -> [ ("status", Str "ok") ]
    | `Error m -> [ ("status", Str "error"); ("error", Str m) ]
  in
  Obj
    ([
       ("schema", Str "mcs-run/1");
       ("flow", Str flow);
       ("design", Str design);
       ("rate", Int rate);
     ]
    @ status_fields
    @ (match wall_s with Some w -> [ ("wall_s", Float w) ] | None -> [])
    @ (if result = [] then [] else [ ("result", Obj result) ])
    @ [ ("phases", phases ()); ("metrics", metrics ()) ])

let write_file path v =
  match open_out path with
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (to_string v);
          output_char oc '\n');
      Ok ()
  | exception Sys_error m -> Error m

type level = Debug | Info | Warn | Error | Quiet

let severity = function
  | Debug -> 0
  | Info -> 1
  | Warn -> 2
  | Error -> 3
  | Quiet -> 4

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"
  | Quiet -> "quiet"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | "quiet" | "off" -> Some Quiet
  | _ -> None

let initial =
  match Sys.getenv_opt "MCS_LOG" with
  | Some s -> Option.value ~default:Warn (level_of_string s)
  | None -> if Sys.getenv_opt "MCS_DEBUG" <> None then Debug else Warn

let threshold = ref initial
let set_level l = threshold := l
let level () = !threshold
let enabled l = l <> Quiet && severity l >= severity !threshold

let out = Format.err_formatter

let log l fmt =
  if enabled l then begin
    Format.fprintf out "[mcs:%s] " (level_to_string l);
    Format.kfprintf
      (fun ppf ->
        Format.pp_print_newline ppf ();
        Format.pp_print_flush ppf ())
      out fmt
  end
  else Format.ifprintf out fmt

let debug fmt = log Debug fmt
let info fmt = log Info fmt
let warn fmt = log Warn fmt
let error fmt = log Error fmt

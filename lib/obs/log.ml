type level = Debug | Info | Warn | Error | Quiet

let severity = function
  | Debug -> 0
  | Info -> 1
  | Warn -> 2
  | Error -> 3
  | Quiet -> 4

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"
  | Quiet -> "quiet"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | "quiet" | "off" -> Some Quiet
  | _ -> None

let initial =
  match Sys.getenv_opt "MCS_LOG" with
  | Some s -> Option.value ~default:Warn (level_of_string s)
  | None -> if Sys.getenv_opt "MCS_DEBUG" <> None then Debug else Warn

let threshold = ref initial
let set_level l = threshold := l
let level () = !threshold
let enabled l = l <> Quiet && severity l >= severity !threshold

let out = Format.err_formatter

(* Structured context fields, printed [key=value] on every line between
   the level prefix and the message.  [Mcs_flow.Flow.run] binds the
   active flow name here and the engine pool's forked workers bind their
   job hash, so a worker's stderr remains attributable after a crash.
   Later bindings of the same key shadow earlier ones. *)
let context_key : (string * string) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Domain-local: each server worker binds its own job hash without
   clobbering the context of requests in flight on sibling domains. *)
let context () = Domain.DLS.get context_key

let set_field k v =
  let context = context () in
  context := (k, v) :: List.remove_assoc k !context

let unset_field k =
  let context = context () in
  context := List.remove_assoc k !context

let fields () = List.rev !(context ())

let with_field k v f =
  let context = context () in
  let saved = !context in
  set_field k v;
  Fun.protect ~finally:(fun () -> context := saved) f

let pp_context ppf () =
  List.iter (fun (k, v) -> Format.fprintf ppf "%s=%s " k v) (fields ())

let log l fmt =
  if enabled l then begin
    Format.fprintf out "[mcs:%s] %a" (level_to_string l) pp_context ();
    Format.kfprintf
      (fun ppf ->
        Format.pp_print_newline ppf ();
        Format.pp_print_flush ppf ())
      out fmt
  end
  else Format.ifprintf out fmt

let debug fmt = log Debug fmt
let info fmt = log Info fmt
let warn fmt = log Warn fmt
let error fmt = log Error fmt

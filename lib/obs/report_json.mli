(** Machine-readable run reports, dependency-free.

    A minimal JSON abstract syntax with a printer and a parser (the
    parser exists so tests and CI can round-trip emitted reports), plus
    builders that package a synthesis run — status, per-phase wall
    times, flow-specific result fields and the current
    {!Metrics.snapshot} — into one JSON object. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) JSON. *)

val pp : Format.formatter -> t -> unit
(** Indented JSON, for humans. *)

val of_string : string -> (t, string) result
(** Strict parser for the subset emitted by [to_string]/[pp]: no
    trailing commas or comments; numbers without [.], [e] or [E] parse
    as [Int]. *)

(** {2 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
(** [to_float] accepts both [Int] and [Float]. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

(** {2 Report builders} *)

val metrics : unit -> t
(** The current {!Metrics.snapshot} as one object: counters and gauges
    map to numbers, histograms to [{"count","sum","buckets"}]. *)

val phases : unit -> t
(** The current {!Trace.collected} totals as an array of
    [{"name","count","total_s"}] objects. *)

val run_report :
  flow:string ->
  design:string ->
  rate:int ->
  status:[ `Ok | `Error of string ] ->
  ?wall_s:float ->
  ?result:(string * t) list ->
  unit ->
  t
(** A full run report, embedding [metrics ()] and [phases ()]. *)

val write_file : string -> t -> (unit, string) result

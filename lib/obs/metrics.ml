type counter = { mutable c_count : int }
type gauge = { mutable g_value : float }

type histogram = {
  h_bounds : int array;
  h_counts : int array; (* one slot per bound plus the overflow bucket *)
  mutable h_sum : int;
  mutable h_total : int;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : int array;
      counts : int array;
      sum : int;
      total : int;
    }

type instrument = C of counter | G of gauge | H of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

(* The registry itself is shared across domains (the server's worker pool
   registers and reads instruments concurrently), so structural operations
   — registration, snapshot, reset, hook management — take this lock.
   The hot-path updates ([incr]/[set]/[observe]) stay lock-free: a lost
   update under contention only skews a statistic, while a torn Hashtbl
   would crash, and instrument records are never removed once added. *)
let registry_lock = Mutex.create ()

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let register name mk classify =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some i -> classify i
      | None ->
          let i = mk () in
          Hashtbl.add registry name i;
          classify i)

let counter name =
  register name
    (fun () -> C { c_count = 0 })
    (function
      | C c -> c
      | G _ | H _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter"))

let gauge name =
  register name
    (fun () -> G { g_value = 0.0 })
    (function
      | G g -> g
      | C _ | H _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge"))

let histogram name ~buckets =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: empty bucket list";
  Array.iteri
    (fun i b ->
      if i > 0 && buckets.(i - 1) >= b then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    buckets;
  register name
    (fun () ->
      {
        h_bounds = Array.copy buckets;
        h_counts = Array.make (Array.length buckets + 1) 0;
        h_sum = 0;
        h_total = 0;
      }
      |> fun h -> H h)
    (function
      | H h ->
          if h.h_bounds <> buckets then
            invalid_arg
              ("Metrics.histogram: " ^ name
             ^ " already registered with different buckets");
          h
      | C _ | G _ ->
          invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram"))

let incr ?(n = 1) c = c.c_count <- c.c_count + n
let count c = c.c_count
let set g v = g.g_value <- v
let set_max g v = if v > g.g_value then g.g_value <- v

let observe h v =
  let nb = Array.length h.h_bounds in
  let rec slot i = if i >= nb || v <= h.h_bounds.(i) then i else slot (i + 1) in
  h.h_counts.(slot 0) <- h.h_counts.(slot 0) + 1;
  h.h_sum <- h.h_sum + v;
  h.h_total <- h.h_total + 1

(* Hooks run before any registry-wide read or reset, so modules that batch
   updates locally (e.g. [Mcs_util.Ratio]'s reduction counter) can flush
   their pending increments first. *)
let pre_read_hooks : (unit -> unit) list ref = ref []
let on_read f = locked (fun () -> pre_read_hooks := f :: !pre_read_hooks)

(* Hooks run outside the registry lock: they typically register or bump
   instruments themselves, and the lock is not reentrant. *)
let run_pre_read_hooks () =
  let hooks = locked (fun () -> !pre_read_hooks) in
  List.iter (fun f -> f ()) hooks

let snapshot () =
  run_pre_read_hooks ();
  locked (fun () -> Hashtbl.fold
    (fun name i acc ->
      let v =
        match i with
        | C c -> Counter c.c_count
        | G g -> Gauge g.g_value
        | H h ->
            Histogram
              {
                bounds = Array.copy h.h_bounds;
                counts = Array.copy h.h_counts;
                sum = h.h_sum;
                total = h.h_total;
              }
      in
      (name, v) :: acc)
    registry [])
  |> List.sort compare

let reset () =
  run_pre_read_hooks ();
  locked (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | C c -> c.c_count <- 0
          | G g -> g.g_value <- 0.0
          | H h ->
              Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
              h.h_sum <- 0;
              h.h_total <- 0)
        registry)

(* Prometheus-style estimate: locate the bucket containing the q-th
   observation in the cumulative distribution and interpolate linearly
   inside it (the overflow bucket has no upper edge, so its answers clamp
   to the last finite bound).  Exact when a bucket holds one distinct
   value; otherwise within one bucket width. *)
let histogram_quantile v q =
  match v with
  | Counter _ | Gauge _ -> None
  | Histogram { bounds; counts; total; _ } ->
      if total = 0 then None
      else begin
        let q = Float.max 0.0 (Float.min 1.0 q) in
        let rank = q *. float_of_int total in
        let nb = Array.length bounds in
        let rec locate i cum =
          if i > nb then Some (float_of_int bounds.(nb - 1))
          else
            let cum' = cum + counts.(i) in
            if float_of_int cum' >= rank && counts.(i) > 0 then
              if i >= nb then Some (float_of_int bounds.(nb - 1))
              else
                let hi = float_of_int bounds.(i) in
                let lo = if i = 0 then 0.0 else float_of_int bounds.(i - 1) in
                let inside =
                  (rank -. float_of_int cum) /. float_of_int counts.(i)
                in
                Some (lo +. ((hi -. lo) *. Float.max 0.0 (Float.min 1.0 inside)))
            else locate (i + 1) cum'
        in
        locate 0 0
      end

let nonzero = function
  | Counter 0 -> false
  | Counter _ -> true
  | Gauge g -> g <> 0.0
  | Histogram { total; _ } -> total > 0

let pp_summary ppf () =
  let items = List.filter (fun (_, v) -> nonzero v) (snapshot ()) in
  let width =
    List.fold_left (fun acc (n, _) -> max acc (String.length n)) 6 items
  in
  Format.fprintf ppf "@[<v>%-*s  value@,%s@," width "metric"
    (String.make (width + 7) '-');
  List.iter
    (fun (name, v) ->
      match v with
      | Counter c -> Format.fprintf ppf "%-*s  %d@," width name c
      | Gauge g -> Format.fprintf ppf "%-*s  %g@," width name g
      | Histogram { bounds; counts; sum; total } ->
          let buckets =
            String.concat " "
              (List.mapi
                 (fun i c ->
                   let le =
                     if i < Array.length bounds then
                       string_of_int bounds.(i)
                     else "inf"
                   in
                   Printf.sprintf "<=%s:%d" le c)
                 (Array.to_list counts))
          in
          Format.fprintf ppf "%-*s  n=%d sum=%d [%s]@," width name total sum
            buckets)
    items;
  Format.fprintf ppf "@]"

(** Process-wide registry of solver counters, gauges and histograms.

    Instruments the hot loops of the synthesis flows (simplex pivots,
    branch-and-bound nodes, force evaluations, augmenting paths, ...).
    Instruments are registered once at module-initialization time and
    updated in place, so the hot-path cost of an update is a single
    unboxed mutation — no allocation, no formatting, no branching on an
    "enabled" flag.  Reading the registry ([snapshot], [pp_summary]) is
    the only place any work happens. *)

type counter
(** Monotonically increasing event count. *)

type gauge
(** Last-written (or maximum) value of some quantity. *)

type histogram
(** Value distribution over fixed integer bucket boundaries. *)

val counter : string -> counter
(** [counter name] registers (or retrieves) the counter called [name].
    Registration is idempotent: the same name always yields the same
    instrument. *)

val gauge : string -> gauge

val histogram : string -> buckets:int array -> histogram
(** [histogram name ~buckets] registers a histogram whose bucket upper
    bounds are [buckets] (strictly increasing); an implicit overflow
    bucket catches larger observations.  Raises [Invalid_argument] if
    [buckets] is empty, not increasing, or disagrees with a previous
    registration under the same name. *)

val incr : ?n:int -> counter -> unit
val count : counter -> int

val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** [set_max g v] raises [g] to [v] if [v] is larger (peak tracking). *)

val observe : histogram -> int -> unit

(** Read-only view of one instrument, for reports. *)
type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : int array;
      counts : int array;  (** length [Array.length bounds + 1]; last = overflow *)
      sum : int;
      total : int;
    }

val on_read : (unit -> unit) -> unit
(** [on_read f] registers [f] to run before every registry-wide read or
    {!reset}.  Modules that keep an instrument's updates in a local
    accumulator to stay off a hot path (e.g. the rational-arithmetic
    reduction counter) register a flush here so reports remain exact. *)

val histogram_quantile : value -> float -> float option
(** [histogram_quantile v q] estimates the [q]-quantile (0 ≤ q ≤ 1,
    clamped) of a [Histogram] value by linear interpolation inside the
    bucket holding the q-th observation; the open overflow bucket clamps
    to the last finite bound.  [None] for empty histograms and
    non-histogram values.  Reports use it to export p50/p95 per
    experiment rather than only sums. *)

val snapshot : unit -> (string * value) list
(** All registered instruments, sorted by name (pre-read hooks run
    first). *)

val reset : unit -> unit
(** Zero every registered instrument (registrations persist).  Run
    reports call this before a flow so counts are per-run. *)

val pp_summary : Format.formatter -> unit -> unit
(** Table of every instrument with a nonzero value. *)

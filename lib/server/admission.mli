(** Deadline-aware admission control for the daemon.

    The server tracks the last few dozen request latencies; a new
    request with a deadline is rejected up front when the queue is full
    or when [(depth + 1) x median latency] already exceeds its deadline
    — failing fast with a typed diagnostic instead of burning a worker
    domain on a budget that will expire mid-solve.

    Not domain-safe by design: every call site is the server's
    single-threaded main loop.

    Metrics: counters [server.admitted] / [server.rejected], gauges
    [server.queue_depth] / [server.inflight], histogram
    [server.latency_ms] (the source of the stats endpoint's p50/p95). *)

type t

val make : ?max_queue:int -> unit -> t
(** [max_queue] (default 256) bounds jobs admitted but not yet replied. *)

val max_queue : t -> int

val observe : t -> latency_ms:float -> unit
(** Record one completed request's submit-to-reply latency. *)

val median : t -> float option
(** Median of the recorded window; [None] before the first completion. *)

val decide : t -> depth:int -> deadline_ms:float option -> (unit, string) result
(** Admit or reject a request arriving with [depth] jobs already in
    flight.  [Error] carries the human-readable reason (the caller wraps
    it in a typed [exhausted] diag). *)

val set_depth : int -> unit
val set_inflight : int -> unit
(** Publish the current queue/in-flight gauges. *)

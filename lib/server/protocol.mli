(** The daemon's wire protocol: newline-delimited JSON over a stream
    socket.

    Requests carry version tag [mcs-req/1].  A submission quotes the
    job's canonical [mcs-job/1] encoding verbatim (the same string the
    cache digests and reports embed), an optional client-chosen [id]
    echoed on the reply, an optional per-request [deadline_ms] that
    becomes the {!Mcs_resilience.Budget} for the whole flow, and a
    [fallback] switch (default [true]) selecting degradation-ladder
    behaviour on exhaustion.  A bare [mcs-job/1|...] line (no JSON) is
    accepted as a submission with a server-assigned id, so jobs can be
    piped straight from a report.

    Replies carry version tag [mcs-run/1] and embed the
    {!Mcs_engine.Outcome} JSON codec unchanged; a failed request carries
    a typed {!diag} (stringified {!Mcs_flow.Diag.code}) instead.  Stats
    responses carry [mcs-serve/1]; the farewell on graceful shutdown is
    a [mcs-serve/1] object with [bye:true]. *)

val request_magic : string
(** ["mcs-req/1"]. *)

val reply_magic : string
(** ["mcs-run/1"]. *)

val stats_magic : string
(** ["mcs-serve/1"]. *)

type submit = {
  id : string;  (** echoed verbatim on the reply; [""] = server assigns *)
  job : Mcs_engine.Job.t;
  deadline_ms : float option;
  fallback : bool;
}

type request = Submit of submit | Stats_req | Shutdown_req

(** The structured failure cause of a request: a stringified
    {!Mcs_flow.Diag.code}, the phase that produced it, and the rendered
    message — enough for a client to route on ["exhausted"] without
    parsing prose. *)
type diag = { code : string; phase : string; message : string }

type reply = {
  id : string;
  outcome : Mcs_engine.Outcome.t option;  (** [None] iff rejected *)
  diag : diag option;
  cached : bool;  (** served from the warm cache *)
  coalesced : bool;  (** shared an in-flight identical computation *)
  wall_ms : float;  (** submit-to-reply latency as the server saw it *)
}

type response =
  | Reply of reply
  | Stats of Mcs_obs.Report_json.t  (** the full [mcs-serve/1] object *)
  | Bye of { drained : int }

val submit :
  ?id:string ->
  ?deadline_ms:float ->
  ?fallback:bool ->
  Mcs_engine.Job.t ->
  request

val diag_of_flow : Mcs_flow.Diag.t -> diag

val exhausted_diag : phase:string -> string -> diag
(** A server-synthesized deadline/admission failure, typed
    [Diag.Exhausted] like a solver's own budget exhaustion. *)

val poisoned_diag : phase:string -> string -> diag
(** A supervisor quarantine: the job repeatedly killed its worker domain
    and the circuit breaker answered instead of retrying forever. *)

val oversized_diag : phase:string -> string -> diag
(** A protocol frame exceeded the server's size bound; the connection is
    closed after this reply flushes. *)

val request_to_string : request -> string
val request_of_string : string -> (request, string) result

val response_to_string : response -> string
val response_of_string : string -> (response, string) result

module M = Mcs_obs.Metrics

let c_tasks = M.counter "server.pool.tasks"
let c_crashes_injected = M.counter "server.pool.crashes_injected"

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  mutable crash_left : int; (* crash-worker:N fault, guarded by [lock] *)
  size : int;
}

(* A worker drains the queue even while stopping — graceful shutdown
   means finishing admitted work, not dropping it — and exits only when
   the stop flag is up and the queue is dry.  Tasks are expected to
   catch their own failures (the server wraps each job so any exception
   becomes a [Crashed] outcome); the [try] here is the last-resort guard
   that keeps a buggy task from killing its domain. *)
let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.nonempty t.lock
  done;
  if Queue.is_empty t.queue then begin
    Mutex.unlock t.lock;
    () (* stopping and drained *)
  end
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.lock;
    (try task () with _ -> ());
    worker_loop t
  end

(* Minor-GC synchronisation is what makes a multi-domain pool slower than
   one domain on this workload: the flows allocate hard (schedulers,
   rational arithmetic), so under the default 256k-word minor heap every
   domain triggers a stop-the-world minor collection every few
   milliseconds, and with N domains each collection barriers the other
   N-1 mid-solve.  A 4M-word per-domain minor heap makes the serve
   grid's wall flat in the domain count where it previously *grew* with
   N (measured: 0.54 s → 1.0 s going 1 → 4 domains at 256k; ~0.6 s flat
   at ≥1M words).  The size cannot be fixed here: on OCaml 5.1 the
   per-domain minor arenas are reserved at process startup and [Gc.set]
   cannot grow them (a spawned domain still sees 256k), so the pool only
   publishes the recommendation and the daemon entry point applies it by
   re-exec'ing with [OCAMLRUNPARAM=s=...] before any domain exists. *)
let recommended_minor_heap_words = 4 * 1024 * 1024

let create ?(domains = 2) () =
  let size = max 1 domains in
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
      (* The crash-worker:N fault is read once at pool creation: the
         first N tasks that consult [take_crash] simulate a dead worker,
         then the pool serves normally — mirroring the fork pool, where
         the first N forked children are killed on entry. *)
      crash_left = Mcs_resilience.Fault.crash_workers ();
      size;
    }
  in
  t.workers <-
    List.init size (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

let submit t task =
  M.incr c_tasks;
  Mutex.lock t.lock;
  let accepted = not t.stopping in
  if accepted then Queue.push task t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock;
  accepted

let queued t =
  Mutex.lock t.lock;
  let n = Queue.length t.queue in
  Mutex.unlock t.lock;
  n

let take_crash t =
  Mutex.lock t.lock;
  let crash = t.crash_left > 0 in
  if crash then begin
    t.crash_left <- t.crash_left - 1;
    M.incr c_crashes_injected
  end;
  Mutex.unlock t.lock;
  crash

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

module Job = Mcs_engine.Job
module M = Mcs_obs.Metrics

let c_coalesced = M.counter "server.coalesced"
let c_batches = M.counter "server.batches"

type waiter = {
  conn : int;
  req_id : string;
  enqueued_at : float;
  deadline : float option; (* absolute, seconds on the gettimeofday clock *)
  fallback : bool;
  attached : bool;
}

type entry = {
  job : Job.t;
  key : string;
  mutable waiters : waiter list; (* reverse arrival order *)
  mutable dispatched : bool;
}

type t = {
  window_ms : float;
  inflight : (string, entry) Hashtbl.t;
  mutable window : entry list; (* reverse arrival order, not yet dispatched *)
  mutable opened : float option;
}

let make ?(window_ms = 5.0) () =
  { window_ms; inflight = Hashtbl.create 64; window = []; opened = None }

let pending t = Hashtbl.length t.inflight

let submit t ~now job waiter =
  let key = Job.to_string job in
  match Hashtbl.find_opt t.inflight key with
  | Some entry ->
      (* Identical in-flight job: this request shares the computation
         whether the job is still in the window or already running. *)
      entry.waiters <- { waiter with attached = true } :: entry.waiters;
      M.incr c_coalesced;
      `Coalesced
  | None ->
      let entry = { job; key; waiters = [ waiter ]; dispatched = false } in
      Hashtbl.add t.inflight key entry;
      t.window <- entry :: t.window;
      if t.opened = None then t.opened <- Some now;
      `New

(* Seconds until the open window is due to flush; [None] when nothing is
   waiting.  The server folds this into its select timeout. *)
let due t ~now =
  match t.opened with
  | None -> None
  | Some at -> Some (Float.max 0.0 ((at +. (t.window_ms /. 1000.0)) -. now))

(* Same-design same-flow entries that arrived within one window merge
   into one batch — one grid job for a worker domain, so a client
   sweeping rates over a design pays one dispatch.  Entries keep arrival
   order within and across batches. *)
let flush t ~now ~force =
  let expired =
    match t.opened with
    | None -> false
    | Some at -> force || now -. at >= t.window_ms /. 1000.0
  in
  if not expired then []
  else begin
    let entries = List.rev t.window in
    t.window <- [];
    t.opened <- None;
    List.iter (fun e -> e.dispatched <- true) entries;
    let batches = ref [] in
    List.iter
      (fun e ->
        let group =
          (Job.design_to_string e.job.Job.design, e.job.Job.flow)
        in
        match List.assoc_opt group !batches with
        | Some cell -> cell := e :: !cell
        | None -> batches := !batches @ [ (group, ref [ e ]) ])
      entries;
    let out = List.map (fun (_, cell) -> List.rev !cell) !batches in
    M.incr c_batches ~n:(List.length out);
    out
  end

let complete t entry = Hashtbl.remove t.inflight entry.key

(* The budget a batch entry runs under: unlimited if any waiter asked
   for no deadline, else the most patient waiter's.  Fallback engages if
   any waiter asked for it — a shared computation degrades rather than
   erroring out under the strictest participant's preference. *)
let entry_deadline entry =
  List.fold_left
    (fun acc w ->
      match (acc, w.deadline) with
      | None, _ | _, None -> None
      | Some a, Some b -> Some (Float.max a b))
    (Some neg_infinity) entry.waiters

let entry_fallback entry = List.exists (fun w -> w.fallback) entry.waiters

(** Request coalescing and batching for the daemon.

    Two mechanisms, one structure.  {e Coalescing}: a submission whose
    canonical job encoding matches an in-flight entry (queued or already
    running) attaches as an extra waiter and shares the one computation
    — its reply is bit-identical to a solo run because the outcome codec
    carries no environment-dependent data.  {e Batching}: new entries
    collect in a short window; on flush, same-design same-flow entries
    (e.g. one design swept over rates) merge into one batch dispatched
    to a single worker domain as one grid job.

    Not domain-safe by design: every call site is the server's
    single-threaded main loop; worker domains only ever see the
    immutable job and the waiter list snapshot the server hands them.

    Counters: [server.coalesced] (requests that attached),
    [server.batches] (batches dispatched). *)

type waiter = {
  conn : int;  (** connection id to reply on *)
  req_id : string;
  enqueued_at : float;
  deadline : float option;  (** absolute, [Unix.gettimeofday] clock *)
  fallback : bool;
  attached : bool;  (** joined an already-in-flight entry *)
}

type entry = {
  job : Mcs_engine.Job.t;
  key : string;  (** canonical encoding, the coalescing identity *)
  mutable waiters : waiter list;  (** reverse arrival order *)
  mutable dispatched : bool;
}

type t

val make : ?window_ms:float -> unit -> t
(** [window_ms] (default 5) is the batching window: how long a fresh
    entry waits for same-design company before dispatch. *)

val pending : t -> int
(** Entries admitted and not yet completed (queued or running). *)

val submit :
  t -> now:float -> Mcs_engine.Job.t -> waiter -> [ `New | `Coalesced ]

val due : t -> now:float -> float option
(** Seconds until the open window must flush; [None] when empty. *)

val flush : t -> now:float -> force:bool -> entry list list
(** The batches to dispatch, in arrival order, when the window has
    expired (or [force]d, e.g. on shutdown); [[]] otherwise. *)

val complete : t -> entry -> unit
(** Forget a finished entry so later identical jobs start fresh. *)

val entry_deadline : entry -> float option
(** Most patient waiter's absolute deadline; [None] if any waiter is
    unlimited. *)

val entry_fallback : entry -> bool
(** Degradation ladder engages if any waiter asked for it. *)

(** Durable request journal ([mcs-wal/1]) — the daemon's crash-survival
    record of every admitted request.

    Append-only, line-oriented:
    {v mcs-wal/1|<md5 hex of payload>|<payload> v}
    with two payloads: [admit|<deadline_ms or ->|<fallback>|<id length>|
    <id>|<canonical job>] written (and fsync'd) when a request passes
    admission, before dispatch; and [done|<id>] written when its reply
    leaves, without fsync — losing a done mark costs at most one warm
    recomputation at recovery, never a lost request.

    {!replay} validates every line against its checksum: a torn trailing
    record (the crash interrupted an append) or a torn middle record (the
    [wal-torn] fault) fails its checksum and is dropped and counted,
    while every intact neighbour still parses — so recovery after any
    prefix truncation yields exactly the complete records.

    Counters: [server.wal.appends], [server.wal.torn_injected]. *)

type record =
  | Admit of {
      id : string;
      job : Mcs_engine.Job.t;
      deadline_ms : float option;
      fallback : bool;
    }
  | Done of { id : string }

type t

val open_ : string -> t
(** Open (creating if needed) the journal for appending. *)

val path : t -> string

val append : ?sync:bool -> t -> record -> unit
(** Append one record; [sync] (default [true]) fsyncs afterwards.  The
    server syncs admits and leaves dones unsynced.  Under the [wal-torn]
    fault the record is written truncated (checksum-invalid) so recovery
    tests can exercise torn-record handling deterministically. *)

val close : t -> unit

val replay : string -> record list * int
(** All checksum-valid records in file order, plus the count of torn
    (dropped) lines.  A missing file replays as [([], 0)]. *)

val incomplete : record list -> record list
(** The [Admit] records not yet retired by a matching [Done], in admit
    order — what recovery must re-run.  Request ids may repeat across a
    journal's lifetime; each done retires one admit. *)

val compact : string -> record list -> unit
(** Atomically rewrite the journal to exactly [records] (tmp + rename) —
    called at recovery so replayed work is not re-replayed by the next
    crash. *)

module Job = Mcs_engine.Job
module M = Mcs_obs.Metrics

let magic = "mcs-wal/1"
let c_appends = M.counter "server.wal.appends"
let c_torn_injected = M.counter "server.wal.torn_injected"

type record =
  | Admit of {
      id : string;
      job : Job.t;
      deadline_ms : float option;
      fallback : bool;
    }
  | Done of { id : string }

type t = { fd : Unix.file_descr; path : string }

(* ---- codec ---- *)

(* The payload must survive embedded ['|'] in both the request id (client
   chosen) and the canonical job encoding (['|']-separated itself), so
   the id is length-prefixed and the job string is the final field. *)
let payload_of_record = function
  | Admit { id; job; deadline_ms; fallback } ->
      Printf.sprintf "admit|%s|%d|%d|%s|%s"
        (match deadline_ms with Some ms -> Printf.sprintf "%g" ms | None -> "-")
        (if fallback then 1 else 0)
        (String.length id) id (Job.to_string job)
  | Done { id } -> Printf.sprintf "done|%s" id

let line_of_record r =
  let payload = payload_of_record r in
  Printf.sprintf "%s|%s|%s\n" magic Digest.(to_hex (string payload)) payload

let record_of_payload payload =
  let fail () = Error "unparsable wal payload" in
  match String.index_opt payload '|' with
  | None -> fail ()
  | Some i -> (
      let kind = String.sub payload 0 i in
      let rest = String.sub payload (i + 1) (String.length payload - i - 1) in
      match kind with
      | "done" -> Ok (Done { id = rest })
      | "admit" -> (
          match String.split_on_char '|' rest with
          | dl :: fb :: idlen :: tail -> (
              let deadline_ms =
                if dl = "-" then Ok None
                else
                  match float_of_string_opt dl with
                  | Some ms -> Ok (Some ms)
                  | None -> Error ()
              in
              let fallback =
                match fb with "1" -> Ok true | "0" -> Ok false | _ -> Error ()
              in
              (* [tail] re-joined is "<id>|<job>" with the id's length
                 known, so embedded separators in either are safe. *)
              let idjob = String.concat "|" tail in
              match (deadline_ms, fallback, int_of_string_opt idlen) with
              | Ok deadline_ms, Ok fallback, Some n
                when n >= 0 && n + 1 <= String.length idjob
                     && (n = String.length idjob || idjob.[n] = '|') -> (
                  let id = String.sub idjob 0 n in
                  let jobstr =
                    String.sub idjob (n + 1) (String.length idjob - n - 1)
                  in
                  match Job.of_string jobstr with
                  | Ok job -> Ok (Admit { id; job; deadline_ms; fallback })
                  | Error _ -> fail ())
              | _ -> fail ())
          | _ -> fail ())
      | _ -> fail ())

let record_of_line line =
  (* "mcs-wal/1|<32 hex>|<payload>" with the checksum over the payload. *)
  let magiclen = String.length magic in
  if
    String.length line < magiclen + 34
    || String.sub line 0 magiclen <> magic
    || line.[magiclen] <> '|'
    || line.[magiclen + 33] <> '|'
  then Error "bad wal line"
  else
    let sum = String.sub line (magiclen + 1) 32 in
    let payload =
      String.sub line (magiclen + 34) (String.length line - magiclen - 34)
    in
    if not (String.equal sum Digest.(to_hex (string payload))) then
      Error "wal checksum mismatch"
    else record_of_payload payload

(* ---- append side ---- *)

let open_ path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  { fd; path }

let path t = t.path

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let append ?(sync = true) t record =
  M.incr c_appends;
  let line = line_of_record record in
  let line =
    (* The wal-torn fault truncates the record mid-payload but keeps the
       newline, so exactly this record fails its checksum at replay while
       every neighbour still parses. *)
    if Mcs_resilience.Fault.wal_torn () then begin
      M.incr c_torn_injected;
      String.sub line 0 (String.length line / 2) ^ "\n"
    end
    else line
  in
  write_all t.fd line;
  if sync then try Unix.fsync t.fd with Unix.Unix_error _ -> ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* ---- recovery side ---- *)

let replay path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> ([], 0)
  | data ->
      let n = String.length data in
      let records = ref [] and torn = ref 0 in
      let rec go from =
        if from < n then
          match String.index_from_opt data from '\n' with
          | None ->
              (* Unterminated tail: the crash tore the final append. *)
              incr torn
          | Some nl ->
              (match record_of_line (String.sub data from (nl - from)) with
              | Ok r -> records := r :: !records
              | Error _ -> incr torn);
              go (nl + 1)
      in
      go 0;
      (List.rev !records, !torn)

let incomplete records =
  (* Multiset of admits minus dones, by request id, preserving admit
     order.  Ids can repeat across a journal's lifetime (clients reuse
     c0, c1, ...), so each done retires one admit, latest first. *)
  let done_count = Hashtbl.create 16 in
  List.iter
    (function
      | Done { id } ->
          Hashtbl.replace done_count id
            (1 + Option.value ~default:0 (Hashtbl.find_opt done_count id))
      | Admit _ -> ())
    records;
  List.rev
    (List.fold_left
       (fun acc r ->
         match r with
         | Done _ -> acc
         | Admit a -> (
             match Hashtbl.find_opt done_count a.id with
             | Some n when n > 0 ->
                 Hashtbl.replace done_count a.id (n - 1);
                 acc
             | _ -> r :: acc))
       [] records)

let compact path records =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter (fun r -> write_all fd (line_of_record r)) records;
      try Unix.fsync fd with Unix.Unix_error _ -> ());
  Unix.rename tmp path

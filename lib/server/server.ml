module J = Mcs_obs.Report_json
module M = Mcs_obs.Metrics
module Job = Mcs_engine.Job
module Outcome = Mcs_engine.Outcome
module Cache = Mcs_engine.Cache
module Pool = Mcs_engine.Pool
module F = Mcs_flow.Flow
module P = Protocol

let c_requests = M.counter "server.requests"
let c_served = M.counter "server.served"
let c_protocol_errors = M.counter "server.protocol_errors"
let c_oversized = M.counter "server.oversized"
let c_reaped = M.counter "server.reaped"
let c_backpressure_drops = M.counter "server.backpressure_drops"
let c_wal_recovered = M.counter "server.wal.recovered"
let c_wal_torn = M.counter "server.wal.torn"

type config = {
  socket_path : string;
  tcp_port : int option;
  domains : int;
  cache_dir : string option;
  window_ms : float;
  max_queue : int;
  wal_path : string option;
  recover : bool;
  read_deadline_s : float;
  idle_timeout_s : float;
  max_frame : int;
  stall_s : float;
}

let default_config =
  {
    socket_path = "/tmp/mcs-serve.sock";
    tcp_port = None;
    domains = 2;
    cache_dir = None;
    window_ms = 5.0;
    max_queue = 256;
    wal_path = None;
    recover = false;
    read_deadline_s = 10.0;
    idle_timeout_s = 60.0;
    max_frame = 1 lsl 20;
    stall_s = 30.0;
  }

type conn = {
  fd : Unix.file_descr;
  conn_id : int;
  rbuf : Buffer.t;
  mutable wbuf : string;  (* buffered unwritten output *)
  mutable woff : int;  (* prefix of [wbuf] already written *)
  mutable last_read : float;
  mutable line_started : float option;
      (* when the current partial line began accumulating — the
         slowloris read deadline measures from here *)
  mutable outstanding : int;  (* admitted, not yet replied *)
  mutable stalled : bool;
      (* stall-conn fault: treated as never readable, so the idle
         reaper is what must eventually collect it *)
  mutable closing : bool;  (* close once [wbuf] drains *)
}

(* What a worker domain hands back to the main loop, via the done list
   and the wake pipe. *)
type completion = {
  entry : Coalesce.entry;
  outcome : Outcome.t option;
  diag : P.diag option;
  cached : bool;
}

type t = {
  cfg : config;
  listeners : Unix.file_descr list;
  sup : (Coalesce.entry, completion) Supervisor.t;
  adm : Admission.t;
  coal : Coalesce.t;
  cache : Cache.t option;
  wal : Wal.t option;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  mutable next_anon : int;
  done_lock : Mutex.t;
  mutable done_list : completion list;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable running_jobs : int; (* dispatched to a domain, not yet replied *)
  mutable shutting_down : bool;
  mutable shutdown_conns : int list; (* conns owed a Bye *)
  mutable drained : int; (* jobs finished after shutdown was requested *)
  started : float;
  mutable running : bool;
}

let event name args =
  if Mcs_obs.Events.on () then Mcs_obs.Events.emit ~cat:"serve" name ~args

(* A crashed daemon leaves its socket file behind; a live one answers a
   connect on it.  Probe before binding: only unlink a socket nobody
   accepts on, and refuse to clobber a live daemon (or a path that is
   not a socket at all) instead of silently stealing it. *)
let listen_unix path =
  (match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
          ->
            false
        | exception Unix.Unix_error _ -> false
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      if live then
        raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
      else (
        Mcs_obs.Log.info "removing stale socket %s" path;
        try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path)));
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

(* ---- worker-domain side ---- *)

let crashed_outcome job msg =
  {
    Outcome.job;
    status = Outcome.Crashed msg;
    pins = [];
    pipe_length = 0;
    fu_count = 0;
    check = None;
    degraded = [];
    solver = None;
    refine = None;
  }

(* Never raises: a full pipe just means the loop is already due to wake,
   and a closed one (a straggler poking after [finish]) is moot. *)
let wake_fd wake_w =
  try ignore (Unix.write wake_w (Bytes.of_string "!") 0 1)
  with Unix.Unix_error _ -> ()

let wake t = wake_fd t.wake_w

(* One entry of a batch, on a worker domain.  The per-request deadline
   becomes the flow's whole-solver budget; a deadline found already
   expired is answered with the same typed [Exhausted] diagnostic a
   solver's own exhaustion would produce, without burning the domain. *)
let run_entry t (e : Coalesce.entry) =
  let job = e.Coalesce.job in
  Mcs_obs.Log.with_field "job" (Job.hash job) @@ fun () ->
  Mcs_obs.Trace.with_span ~attrs:[ ("job", Job.hash job) ] "serve.exec"
  @@ fun () ->
  let now = Unix.gettimeofday () in
  let remaining_ms =
    Option.map
      (fun d -> (d -. now) *. 1000.0)
      (Coalesce.entry_deadline e)
  in
  match remaining_ms with
  | Some ms when ms <= 0.0 ->
      {
        entry = e;
        outcome = None;
        cached = false;
        diag =
          Some
            (P.exhausted_diag ~phase:"serve.deadline"
               (Printf.sprintf "deadline expired %.1f ms before execution"
                  (-.ms)));
      }
  | _ ->
      if Supervisor.take_crash t.sup then
        {
          entry = e;
          cached = false;
          diag = None;
          outcome =
            Some
              (crashed_outcome job "injected worker crash (crash-worker fault)");
        }
      else begin
        match Option.bind t.cache (fun c -> Cache.lookup c job) with
        | Some o -> { entry = e; outcome = Some o; diag = None; cached = true }
        | None ->
            let fallback = Coalesce.entry_fallback e in
            let policy =
              match remaining_ms with
              | Some ms ->
                  Some
                    {
                      F.default_policy with
                      F.budget = Mcs_resilience.Budget.make ~deadline_ms:ms ();
                      F.fallback = fallback;
                    }
              | None ->
                  if fallback then None
                  else Some { F.default_policy with F.fallback = false }
            in
            let outcome, dg = Pool.exec_diag ?policy job in
            (match t.cache with
            | Some c -> Cache.store c job outcome
            | None -> ());
            {
              entry = e;
              outcome = Some outcome;
              diag = Option.map P.diag_of_flow dg;
              cached = false;
            }
      end

(* One batch entry under the supervisor's exactly-once protocol, plus
   the cross-grid warm-start chain: a batch runs sequentially on one
   domain, so each entry's parent-basis payload (if any) is imported
   before execution and the settled registry rides to the next entry.
   The registry is process-global, so entries landing on the same domain
   back-to-back chain even without the explicit payload. *)
let exec_entry t (entries : Coalesce.entry array) i =
  let e = entries.(i) in
  (match Job.warm e.Coalesce.job with
  | [] -> ()
  | ws -> Mcs_ilp.Warm.import ws);
  let comp =
    try run_entry t e
    with exn ->
      {
        entry = e;
        outcome = Some (crashed_outcome e.Coalesce.job (Printexc.to_string exn));
        diag = None;
        cached = false;
      }
  in
  (if i + 1 < Array.length entries then
     let e' = entries.(i + 1) in
     if Job.warm e'.Coalesce.job = [] then
       Job.set_warm e'.Coalesce.job (Mcs_ilp.Warm.export_all ()));
  comp

let push_completion t comp =
  Mutex.lock t.done_lock;
  t.done_list <- comp :: t.done_list;
  Mutex.unlock t.done_lock;
  wake t

let poisoned_completion (e : Coalesce.entry) ~strikes =
  {
    entry = e;
    outcome = None;
    cached = false;
    diag =
      Some
        (P.poisoned_diag ~phase:"serve.supervisor"
           (Printf.sprintf
              "job killed its worker domain %d times and was quarantined"
              strikes));
  }

let create ?(config = default_config) () =
  (* A client that disconnects mid-reply must cost the daemon an EPIPE,
     not a fatal signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listeners =
    listen_unix config.socket_path
    :: (match config.tcp_port with
       | Some p -> [ listen_tcp p ]
       | None -> [])
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_w;
  (* Recovery happens before the journal reopens for appending: replay,
     keep what was admitted but never answered, and compact the file to
     exactly that remainder so the next crash does not re-replay work
     this run already finishes. *)
  let recovered =
    match config.wal_path with
    | Some path when config.recover ->
        let records, torn = Wal.replay path in
        if torn > 0 then begin
          M.incr c_wal_torn ~n:torn;
          Mcs_obs.Log.warn "wal: dropped %d torn record(s)" torn
        end;
        let inc = Wal.incomplete records in
        Wal.compact path inc;
        inc
    | _ -> []
  in
  let wal = Option.map Wal.open_ config.wal_path in
  (* The supervisor's callbacks need the server value and the server
     value holds the supervisor: tie the knot through a forward
     reference.  Worker domains only run callbacks after a batch is
     submitted, which is after [t] is built, so the dereference is
     always [Some]. *)
  let tref = ref None in
  let the_t () =
    match !tref with Some t -> t | None -> assert false
  in
  let sup =
    Supervisor.create ~domains:config.domains ~stall_s:config.stall_s
      ~key:(fun (e : Coalesce.entry) -> e.Coalesce.key)
      ~exec:(fun entries i -> exec_entry (the_t ()) entries i)
      ~deliver:(fun comp -> push_completion (the_t ()) comp)
      ~on_poisoned:(fun e ~strikes ->
        event "poisoned"
          [ ("job", Mcs_obs.Events.Str (Job.hash e.Coalesce.job)) ];
        push_completion (the_t ()) (poisoned_completion e ~strikes))
      ~on_wake:(fun () -> wake_fd wake_w)
      ()
  in
  let t =
    {
      cfg = config;
      listeners;
      sup;
      adm = Admission.make ~max_queue:config.max_queue ();
      coal = Coalesce.make ~window_ms:config.window_ms ();
      cache = Option.map Cache.open_dir config.cache_dir;
      wal;
      conns = Hashtbl.create 16;
      next_conn = 0;
      next_anon = 0;
      done_lock = Mutex.create ();
      done_list = [];
      wake_r;
      wake_w;
      running_jobs = 0;
      shutting_down = false;
      shutdown_conns = [];
      drained = 0;
      started = Unix.gettimeofday ();
      running = true;
    }
  in
  tref := Some t;
  (* Replayed requests re-enter through the normal coalescing queue with
     a connection id no client owns: their replies settle into the warm
     cache (and their done marks into the journal), answering nothing —
     zero accepted requests lost, zero replies duplicated. *)
  List.iter
    (fun r ->
      match r with
      | Wal.Admit { id; job; deadline_ms = _; fallback } ->
          M.incr c_wal_recovered;
          let now = Unix.gettimeofday () in
          let waiter =
            {
              Coalesce.conn = -1;
              req_id = id;
              enqueued_at = now;
              deadline = None;
              fallback;
              attached = false;
            }
          in
          ignore (Coalesce.submit t.coal ~now job waiter)
      | Wal.Done _ -> ())
    recovered;
  if recovered <> [] then
    Mcs_obs.Log.info "wal: recovered %d incomplete request(s)"
      (List.length recovered);
  t

(* ---- main-loop side ---- *)

(* Blocking write with EINTR retry — only used by [finish], after the
   loop is over, to flush farewells. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let drop_conn t (c : conn) =
  Hashtbl.remove t.conns c.conn_id;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Drain as much of the write buffer as the socket accepts right now;
   never blocks (the fd is nonblocking), EAGAIN just leaves the rest for
   the next select round's writable set. *)
let flush_conn t (c : conn) =
  let len = String.length c.wbuf in
  let rec go () =
    if c.woff < len then
      match
        Unix.single_write c.fd
          (Bytes.unsafe_of_string c.wbuf)
          c.woff (len - c.woff)
      with
      | n ->
          c.woff <- c.woff + n;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> drop_conn t c
  in
  go ();
  if Hashtbl.mem t.conns c.conn_id && c.woff >= len then begin
    c.wbuf <- "";
    c.woff <- 0;
    if c.closing then drop_conn t c
  end

(* Queue a response on the connection's write buffer and flush
   opportunistically.  A consumer that stops reading while replies pile
   up past the cap is dropped — bounded memory beats a wedged loop. *)
let send t (c : conn) response =
  if Hashtbl.mem t.conns c.conn_id then begin
    let data = P.response_to_string response ^ "\n" in
    if c.woff > 0 then begin
      c.wbuf <- String.sub c.wbuf c.woff (String.length c.wbuf - c.woff);
      c.woff <- 0
    end;
    c.wbuf <- (if c.wbuf = "" then data else c.wbuf ^ data);
    let cap = max (1 lsl 22) (4 * t.cfg.max_frame) in
    if String.length c.wbuf > cap then begin
      M.incr c_backpressure_drops;
      event "backpressure-drop" [ ("conn", Mcs_obs.Events.Int c.conn_id) ];
      drop_conn t c
    end
    else flush_conn t c
  end

let send_to t conn_id response =
  match Hashtbl.find_opt t.conns conn_id with
  | Some c -> send t c response
  | None -> () (* client went away; its share of the work is just dropped *)

let reject t c ~id diag =
  send t c
    (P.Reply
       {
         P.id;
         outcome = None;
         diag = Some diag;
         cached = false;
         coalesced = false;
         wall_ms = 0.0;
       })

let opt_float = function Some f -> J.Float f | None -> J.Null

let stats_json t =
  let snap = M.snapshot () in
  let quantile name q =
    Option.bind (List.assoc_opt name snap) (fun v ->
        M.histogram_quantile v q)
  in
  let counter name =
    match List.assoc_opt name snap with
    | Some (M.Counter n) -> n
    | _ -> 0
  in
  J.Obj
    [
      ("v", J.Str P.stats_magic);
      ("uptime_s", J.Float (Unix.gettimeofday () -. t.started));
      ("domains", J.Int (Supervisor.size t.sup));
      ("queue_depth", J.Int (Coalesce.pending t.coal - t.running_jobs));
      ("inflight", J.Int t.running_jobs);
      ("requests", J.Int (counter "server.requests"));
      ("served", J.Int (counter "server.served"));
      ("rejected", J.Int (counter "server.rejected"));
      ("coalesced", J.Int (counter "server.coalesced"));
      ("batches", J.Int (counter "server.batches"));
      ("cache_hits", J.Int (counter "engine.cache.hits"));
      ("cache_misses", J.Int (counter "engine.cache.misses"));
      ("refine_iterations", J.Int (counter "refine.iterations"));
      ("refine_accepted", J.Int (counter "refine.accepted"));
      ("respawns", J.Int (counter "server.respawns"));
      ("requeued", J.Int (counter "server.requeued"));
      ("poisoned", J.Int (counter "server.poisoned"));
      ("oversized", J.Int (counter "server.oversized"));
      ("reaped", J.Int (counter "server.reaped"));
      ("zombies", J.Int (Supervisor.zombie_count t.sup));
      ("wal_recovered", J.Int (counter "server.wal.recovered"));
      ("wal_torn", J.Int (counter "server.wal.torn"));
      ("latency_p50_ms", opt_float (quantile "server.latency_ms" 0.5));
      ("latency_p95_ms", opt_float (quantile "server.latency_ms" 0.95));
      ("metrics", J.metrics ());
    ]

let fresh_anon t =
  let id = Printf.sprintf "anon%d" t.next_anon in
  t.next_anon <- t.next_anon + 1;
  id

let handle_submit t (c : conn) (s : P.submit) =
  let now = Unix.gettimeofday () in
  let id = if s.P.id = "" then fresh_anon t else s.P.id in
  if t.shutting_down then
    reject t c ~id (P.exhausted_diag ~phase:"serve.shutdown" "server is draining")
  else if Supervisor.poisoned_key t.sup (Job.to_string s.P.job) then begin
    (* The circuit breaker: a job already known to kill worker domains
       is answered immediately, not re-dispatched. *)
    event "reject-poisoned" [ ("id", Mcs_obs.Events.Str id) ];
    reject t c ~id
      (P.poisoned_diag ~phase:"serve.admission"
         "job is quarantined: it repeatedly killed its worker domain")
  end
  else
    let depth = Coalesce.pending t.coal in
    match Admission.decide t.adm ~depth ~deadline_ms:s.P.deadline_ms with
    | Error reason ->
        event "reject"
          [
            ("id", Mcs_obs.Events.Str id);
            ("reason", Mcs_obs.Events.Str reason);
          ];
        reject t c ~id (P.exhausted_diag ~phase:"serve.admission" reason)
    | Ok () ->
        (* The durability point: once the admit record is fsync'd, this
           request survives any daemon crash — recovery replays it.  It
           must land before the request can possibly be dispatched. *)
        (match t.wal with
        | Some w ->
            Wal.append w
              (Wal.Admit
                 {
                   id;
                   job = s.P.job;
                   deadline_ms = s.P.deadline_ms;
                   fallback = s.P.fallback;
                 })
        | None -> ());
        let waiter =
          {
            Coalesce.conn = c.conn_id;
            req_id = id;
            enqueued_at = now;
            deadline = Option.map (fun ms -> now +. (ms /. 1000.0)) s.P.deadline_ms;
            fallback = s.P.fallback;
            attached = false;
          }
        in
        let how = Coalesce.submit t.coal ~now s.P.job waiter in
        c.outstanding <- c.outstanding + 1;
        event "submit"
          [
            ("id", Mcs_obs.Events.Str id);
            ("job", Mcs_obs.Events.Str (Job.hash s.P.job));
            ( "coalesced",
              Mcs_obs.Events.Bool (match how with `Coalesced -> true | `New -> false) );
          ]

let handle_line t (c : conn) line =
  if String.trim line <> "" then begin
    M.incr c_requests;
    match P.request_of_string line with
    | Error m ->
        M.incr c_protocol_errors;
        send t c
          (P.Reply
             {
               P.id = "";
               outcome = None;
               diag =
                 Some
                   {
                     P.code =
                       Mcs_flow.Diag.code_to_string Mcs_flow.Diag.Invalid_input;
                     phase = "serve.protocol";
                     message = m;
                   };
               cached = false;
               coalesced = false;
               wall_ms = 0.0;
             })
    | Ok (P.Submit s) -> handle_submit t c s
    | Ok P.Stats_req -> send t c (P.Stats (stats_json t))
    | Ok P.Shutdown_req ->
        t.shutting_down <- true;
        t.shutdown_conns <- c.conn_id :: t.shutdown_conns;
        event "shutdown" []
  end

let oversize_conn t (c : conn) n =
  M.incr c_oversized;
  event "oversized"
    [
      ("conn", Mcs_obs.Events.Int c.conn_id); ("bytes", Mcs_obs.Events.Int n);
    ];
  Buffer.clear c.rbuf;
  c.line_started <- None;
  c.closing <- true;
  reject t c ~id:""
    (P.oversized_diag ~phase:"serve.protocol"
       (Printf.sprintf "frame exceeds %d bytes" t.cfg.max_frame))

let handle_readable t (c : conn) =
  let chunk = Bytes.create 4096 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop_conn t c
  | n ->
      let now = Unix.gettimeofday () in
      c.last_read <- now;
      Buffer.add_subbytes c.rbuf chunk 0 n;
      let data = Buffer.contents c.rbuf in
      let oversized = ref false in
      let completed = ref false in
      let rec eat from =
        if !oversized then ()
        else
          match String.index_from_opt data from '\n' with
          | None ->
              Buffer.clear c.rbuf;
              let rest = String.length data - from in
              Buffer.add_string c.rbuf (String.sub data from rest);
              (* The slowloris clock starts when a partial line begins
                 and is NOT reset by further dribbled bytes — only a
                 completed line restarts it.  Exceeding the frame bound
                 without ever sending the newline is answered (typed)
                 and the connection retired. *)
              if rest > t.cfg.max_frame then oversize_conn t c rest
              else if rest = 0 then c.line_started <- None
              else if !completed || c.line_started = None then
                c.line_started <- Some now
          | Some nl ->
              if nl - from > t.cfg.max_frame then begin
                oversized := true;
                Buffer.clear c.rbuf;
                oversize_conn t c (nl - from)
              end
              else begin
                handle_line t c (String.sub data from (nl - from));
                eat (nl + 1)
              end
      in
      eat 0
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    ->
      (* A signal or a spurious readability wakeup is not a protocol
         error; the connection stays. *)
      ()
  | exception Unix.Unix_error _ -> drop_conn t c

let accept_conn t lfd =
  match Unix.accept lfd with
  | fd, _ ->
      Unix.set_nonblock fd;
      let conn_id = t.next_conn in
      t.next_conn <- t.next_conn + 1;
      let stalled = Mcs_resilience.Fault.stall_conn () in
      Hashtbl.replace t.conns conn_id
        {
          fd;
          conn_id;
          rbuf = Buffer.create 256;
          wbuf = "";
          woff = 0;
          last_read = Unix.gettimeofday ();
          line_started = None;
          outstanding = 0;
          stalled;
          closing = false;
        };
      event "accept" [ ("conn", Mcs_obs.Events.Int conn_id) ]
  | exception Unix.Unix_error _ -> ()

(* Connection hygiene, once per loop tick: a partial line older than the
   read deadline is a slowloris and is reaped; a connection idle past
   the idle timeout with nothing owed either way is reaped; a [closing]
   connection whose buffer drained is closed. *)
let reap_conns t ~now =
  let victims =
    Hashtbl.fold
      (fun _ c acc ->
        if c.closing && c.woff >= String.length c.wbuf then (c, `Done) :: acc
        else if
          t.cfg.read_deadline_s > 0.0
          && match c.line_started with
             | Some t0 -> now -. t0 > t.cfg.read_deadline_s
             | None -> false
        then (c, `Reap) :: acc
        else if
          t.cfg.idle_timeout_s > 0.0
          && c.outstanding = 0
          && String.length c.wbuf = 0
          && (not c.closing)
          && now -. c.last_read > t.cfg.idle_timeout_s
        then (c, `Reap) :: acc
        else acc)
      t.conns []
  in
  List.iter
    (fun (c, why) ->
      (match why with
      | `Reap ->
          M.incr c_reaped;
          event "reap" [ ("conn", Mcs_obs.Events.Int c.conn_id) ]
      | `Done -> ());
      drop_conn t c)
    victims

let run_batch_inline t (entries : Coalesce.entry array) =
  Array.iteri (fun i _ -> push_completion t (exec_entry t entries i)) entries

let dispatch_due t ~now =
  List.iter
    (fun batch ->
      t.running_jobs <- t.running_jobs + List.length batch;
      let entries = Array.of_list batch in
      if not (Supervisor.submit t.sup entries) then
        (* The pool stopped underneath us (shutdown raced a late window):
           run inline so no admitted request is ever left unanswered. *)
        run_batch_inline t entries)
    (Coalesce.flush t.coal ~now ~force:t.shutting_down)

let process_completions t =
  let comps =
    Mutex.lock t.done_lock;
    let l = t.done_list in
    t.done_list <- [];
    Mutex.unlock t.done_lock;
    List.rev l
  in
  let now = Unix.gettimeofday () in
  List.iter
    (fun comp ->
      Coalesce.complete t.coal comp.entry;
      t.running_jobs <- t.running_jobs - 1;
      if t.shutting_down then t.drained <- t.drained + 1;
      List.iter
        (fun (w : Coalesce.waiter) ->
          let wall_ms = (now -. w.Coalesce.enqueued_at) *. 1000.0 in
          Admission.observe t.adm ~latency_ms:wall_ms;
          M.incr c_served;
          (* The done mark is unsynced: losing it costs one warm
             recomputation at recovery, never a lost request. *)
          (match t.wal with
          | Some wal -> Wal.append ~sync:false wal (Wal.Done { id = w.Coalesce.req_id })
          | None -> ());
          event "reply"
            [
              ("id", Mcs_obs.Events.Str w.Coalesce.req_id);
              ("wall_ms", Mcs_obs.Events.Float wall_ms);
            ];
          (match Hashtbl.find_opt t.conns w.Coalesce.conn with
          | Some c -> c.outstanding <- max 0 (c.outstanding - 1)
          | None -> ());
          send_to t w.Coalesce.conn
            (P.Reply
               {
                 P.id = w.Coalesce.req_id;
                 outcome = comp.outcome;
                 diag = comp.diag;
                 cached = comp.cached;
                 coalesced = w.Coalesce.attached;
                 wall_ms;
               }))
        (List.rev comp.entry.Coalesce.waiters))
    comps;
  Admission.set_depth (Coalesce.pending t.coal - t.running_jobs);
  Admission.set_inflight t.running_jobs

let finish t =
  Supervisor.shutdown t.sup;
  process_completions t;
  List.iter
    (fun conn_id -> send_to t conn_id (P.Bye { drained = t.drained }))
    (List.rev t.shutdown_conns);
  (* Flush what each connection is still owed (final replies, the
     farewell) with blocking writes — the loop is over, there is nothing
     left to starve. *)
  Hashtbl.iter
    (fun _ c ->
      if c.woff < String.length c.wbuf then begin
        (try Unix.clear_nonblock c.fd with Unix.Unix_error _ -> ());
        try
          write_all c.fd
            (String.sub c.wbuf c.woff (String.length c.wbuf - c.woff))
        with Unix.Unix_error _ -> ()
      end)
    t.conns;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  Hashtbl.reset t.conns;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listeners;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  Option.iter Wal.close t.wal;
  t.running <- false

(* For signal handlers in the daemon binary: flips the same flag a
   protocol-level shutdown request sets, so SIGTERM drains like a polite
   client (there is just no connection owed a farewell). *)
let request_shutdown t = t.shutting_down <- true

(* A signal landing mid-select (SIGCHLD from a benchmark's forked child,
   a harmless SIGUSR1) must restart the wait, not surface as an error or
   tear anything down. *)
let rec select_retry r w tmo =
  try Unix.select r w [] tmo
  with Unix.Unix_error (Unix.EINTR, _, _) -> select_retry r w tmo

let serve t =
  while t.running do
    let now = Unix.gettimeofday () in
    Supervisor.check t.sup ~now;
    dispatch_due t ~now;
    reap_conns t ~now;
    Admission.set_depth (Coalesce.pending t.coal - t.running_jobs);
    Admission.set_inflight t.running_jobs;
    if
      t.shutting_down
      && Coalesce.pending t.coal = 0
      && Supervisor.queued t.sup = 0
    then finish t
    else begin
      let tmo =
        let cap = if t.shutting_down then 0.05 else 0.2 in
        match Coalesce.due t.coal ~now with
        | Some d -> Float.min d cap
        | None -> cap
      in
      let conn_fds =
        Hashtbl.fold (fun _ c acc -> (c.fd, c) :: acc) t.conns []
      in
      let rfds =
        (t.wake_r :: t.listeners)
        @ List.filter_map
            (fun (fd, c) -> if c.stalled then None else Some fd)
            conn_fds
      in
      let wfds =
        List.filter_map
          (fun (fd, c) ->
            if c.woff < String.length c.wbuf then Some fd else None)
          conn_fds
      in
      let readable, writable, _ = select_retry rfds wfds tmo in
      List.iter
        (fun fd ->
          if fd = t.wake_r then begin
            let buf = Bytes.create 64 in
            (try ignore (Unix.read t.wake_r buf 0 64)
             with Unix.Unix_error _ -> ())
          end
          else if List.mem fd t.listeners then accept_conn t fd
          else
            match List.assoc_opt fd conn_fds with
            | Some c -> handle_readable t c
            | None -> ())
        readable;
      List.iter
        (fun fd ->
          match List.assoc_opt fd conn_fds with
          | Some c when Hashtbl.mem t.conns c.conn_id -> flush_conn t c
          | _ -> ())
        writable;
      process_completions t
    end
  done

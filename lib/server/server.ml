module J = Mcs_obs.Report_json
module M = Mcs_obs.Metrics
module Job = Mcs_engine.Job
module Outcome = Mcs_engine.Outcome
module Cache = Mcs_engine.Cache
module Pool = Mcs_engine.Pool
module F = Mcs_flow.Flow
module P = Protocol

let c_requests = M.counter "server.requests"
let c_served = M.counter "server.served"
let c_protocol_errors = M.counter "server.protocol_errors"

type config = {
  socket_path : string;
  tcp_port : int option;
  domains : int;
  cache_dir : string option;
  window_ms : float;
  max_queue : int;
}

let default_config =
  {
    socket_path = "/tmp/mcs-serve.sock";
    tcp_port = None;
    domains = 2;
    cache_dir = None;
    window_ms = 5.0;
    max_queue = 256;
  }

type conn = { fd : Unix.file_descr; conn_id : int; rbuf : Buffer.t }

(* What a worker domain hands back to the main loop, via the done list
   and the wake pipe. *)
type completion = {
  entry : Coalesce.entry;
  outcome : Outcome.t option;
  diag : P.diag option;
  cached : bool;
}

type t = {
  cfg : config;
  listeners : Unix.file_descr list;
  pool : Domain_pool.t;
  adm : Admission.t;
  coal : Coalesce.t;
  cache : Cache.t option;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  mutable next_anon : int;
  done_lock : Mutex.t;
  mutable done_list : completion list;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable running_jobs : int; (* dispatched to a domain, not yet replied *)
  mutable shutting_down : bool;
  mutable shutdown_conns : int list; (* conns owed a Bye *)
  mutable drained : int; (* jobs finished after shutdown was requested *)
  started : float;
  mutable running : bool;
}

let event name args =
  if Mcs_obs.Events.on () then Mcs_obs.Events.emit ~cat:"serve" name ~args

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let create ?(config = default_config) () =
  (* A client that disconnects mid-reply must cost the daemon an EPIPE,
     not a fatal signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listeners =
    listen_unix config.socket_path
    :: (match config.tcp_port with
       | Some p -> [ listen_tcp p ]
       | None -> [])
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_w;
  {
    cfg = config;
    listeners;
    pool = Domain_pool.create ~domains:config.domains ();
    adm = Admission.make ~max_queue:config.max_queue ();
    coal = Coalesce.make ~window_ms:config.window_ms ();
    cache = Option.map Cache.open_dir config.cache_dir;
    conns = Hashtbl.create 16;
    next_conn = 0;
    next_anon = 0;
    done_lock = Mutex.create ();
    done_list = [];
    wake_r;
    wake_w;
    running_jobs = 0;
    shutting_down = false;
    shutdown_conns = [];
    drained = 0;
    started = Unix.gettimeofday ();
    running = true;
  }

(* ---- worker-domain side ---- *)

let crashed_outcome job msg =
  {
    Outcome.job;
    status = Outcome.Crashed msg;
    pins = [];
    pipe_length = 0;
    fu_count = 0;
    check = None;
    degraded = [];
    solver = None;
    refine = None;
  }

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.of_string "!") 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

(* One entry of a batch, on a worker domain.  The per-request deadline
   becomes the flow's whole-solver budget; a deadline found already
   expired is answered with the same typed [Exhausted] diagnostic a
   solver's own exhaustion would produce, without burning the domain. *)
let run_entry t (e : Coalesce.entry) =
  let job = e.Coalesce.job in
  Mcs_obs.Log.with_field "job" (Job.hash job) @@ fun () ->
  Mcs_obs.Trace.with_span ~attrs:[ ("job", Job.hash job) ] "serve.exec"
  @@ fun () ->
  let now = Unix.gettimeofday () in
  let remaining_ms =
    Option.map
      (fun d -> (d -. now) *. 1000.0)
      (Coalesce.entry_deadline e)
  in
  match remaining_ms with
  | Some ms when ms <= 0.0 ->
      {
        entry = e;
        outcome = None;
        cached = false;
        diag =
          Some
            (P.exhausted_diag ~phase:"serve.deadline"
               (Printf.sprintf "deadline expired %.1f ms before execution"
                  (-.ms)));
      }
  | _ ->
      if Domain_pool.take_crash t.pool then
        {
          entry = e;
          cached = false;
          diag = None;
          outcome =
            Some
              (crashed_outcome job "injected worker crash (crash-worker fault)");
        }
      else begin
        match Option.bind t.cache (fun c -> Cache.lookup c job) with
        | Some o -> { entry = e; outcome = Some o; diag = None; cached = true }
        | None ->
            let fallback = Coalesce.entry_fallback e in
            let policy =
              match remaining_ms with
              | Some ms ->
                  Some
                    {
                      F.default_policy with
                      F.budget = Mcs_resilience.Budget.make ~deadline_ms:ms ();
                      F.fallback = fallback;
                    }
              | None ->
                  if fallback then None
                  else Some { F.default_policy with F.fallback = false }
            in
            let outcome, dg = Pool.exec_diag ?policy job in
            (match t.cache with
            | Some c -> Cache.store c job outcome
            | None -> ());
            {
              entry = e;
              outcome = Some outcome;
              diag = Option.map P.diag_of_flow dg;
              cached = false;
            }
      end

(* A coalesced batch runs sequentially on one domain, which makes it the
   cross-grid warm-start chain: each entry's parent-basis payload (if
   any) is imported before execution, and the settled registry rides to
   the next entry of the batch.  The registry is process-global, so
   entries landing on the same domain back-to-back chain even without
   the explicit payload — the payload matters when the batching window
   grouped neighboring grid points deliberately. *)
let run_batch t batch =
  let rec go = function
    | [] -> ()
    | e :: rest ->
        (match Job.warm e.Coalesce.job with
        | [] -> ()
        | entries -> Mcs_ilp.Warm.import entries);
        let comp =
          try run_entry t e
          with exn ->
            {
              entry = e;
              outcome =
                Some
                  (crashed_outcome e.Coalesce.job (Printexc.to_string exn));
              diag = None;
              cached = false;
            }
        in
        (match rest with
        | e' :: _ when Job.warm e'.Coalesce.job = [] ->
            Job.set_warm e'.Coalesce.job (Mcs_ilp.Warm.export_all ())
        | _ -> ());
        Mutex.lock t.done_lock;
        t.done_list <- comp :: t.done_list;
        Mutex.unlock t.done_lock;
        wake t;
        go rest
  in
  go batch

(* ---- main-loop side ---- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let drop_conn t (c : conn) =
  Hashtbl.remove t.conns c.conn_id;
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let send t (c : conn) response =
  try write_all c.fd (P.response_to_string response ^ "\n")
  with Unix.Unix_error _ -> drop_conn t c

let send_to t conn_id response =
  match Hashtbl.find_opt t.conns conn_id with
  | Some c -> send t c response
  | None -> () (* client went away; its share of the work is just dropped *)

let reject t c ~id ~phase reason =
  send t c
    (P.Reply
       {
         P.id;
         outcome = None;
         diag = Some (P.exhausted_diag ~phase reason);
         cached = false;
         coalesced = false;
         wall_ms = 0.0;
       })

let opt_float = function Some f -> J.Float f | None -> J.Null

let stats_json t =
  let snap = M.snapshot () in
  let quantile name q =
    Option.bind (List.assoc_opt name snap) (fun v ->
        M.histogram_quantile v q)
  in
  let counter name =
    match List.assoc_opt name snap with
    | Some (M.Counter n) -> n
    | _ -> 0
  in
  J.Obj
    [
      ("v", J.Str P.stats_magic);
      ("uptime_s", J.Float (Unix.gettimeofday () -. t.started));
      ("domains", J.Int (Domain_pool.size t.pool));
      ("queue_depth", J.Int (Coalesce.pending t.coal - t.running_jobs));
      ("inflight", J.Int t.running_jobs);
      ("requests", J.Int (counter "server.requests"));
      ("served", J.Int (counter "server.served"));
      ("rejected", J.Int (counter "server.rejected"));
      ("coalesced", J.Int (counter "server.coalesced"));
      ("batches", J.Int (counter "server.batches"));
      ("cache_hits", J.Int (counter "engine.cache.hits"));
      ("cache_misses", J.Int (counter "engine.cache.misses"));
      ("refine_iterations", J.Int (counter "refine.iterations"));
      ("refine_accepted", J.Int (counter "refine.accepted"));
      ("latency_p50_ms", opt_float (quantile "server.latency_ms" 0.5));
      ("latency_p95_ms", opt_float (quantile "server.latency_ms" 0.95));
      ("metrics", J.metrics ());
    ]

let fresh_anon t =
  let id = Printf.sprintf "anon%d" t.next_anon in
  t.next_anon <- t.next_anon + 1;
  id

let handle_submit t (c : conn) (s : P.submit) =
  let now = Unix.gettimeofday () in
  let id = if s.P.id = "" then fresh_anon t else s.P.id in
  if t.shutting_down then
    reject t c ~id ~phase:"serve.shutdown" "server is draining"
  else
    let depth = Coalesce.pending t.coal in
    match Admission.decide t.adm ~depth ~deadline_ms:s.P.deadline_ms with
    | Error reason ->
        event "reject"
          [
            ("id", Mcs_obs.Events.Str id);
            ("reason", Mcs_obs.Events.Str reason);
          ];
        reject t c ~id ~phase:"serve.admission" reason
    | Ok () ->
        let waiter =
          {
            Coalesce.conn = c.conn_id;
            req_id = id;
            enqueued_at = now;
            deadline = Option.map (fun ms -> now +. (ms /. 1000.0)) s.P.deadline_ms;
            fallback = s.P.fallback;
            attached = false;
          }
        in
        let how = Coalesce.submit t.coal ~now s.P.job waiter in
        event "submit"
          [
            ("id", Mcs_obs.Events.Str id);
            ("job", Mcs_obs.Events.Str (Job.hash s.P.job));
            ( "coalesced",
              Mcs_obs.Events.Bool (match how with `Coalesced -> true | `New -> false) );
          ]

let handle_line t (c : conn) line =
  if String.trim line <> "" then begin
    M.incr c_requests;
    match P.request_of_string line with
    | Error m ->
        M.incr c_protocol_errors;
        send t c
          (P.Reply
             {
               P.id = "";
               outcome = None;
               diag =
                 Some
                   {
                     P.code =
                       Mcs_flow.Diag.code_to_string Mcs_flow.Diag.Invalid_input;
                     phase = "serve.protocol";
                     message = m;
                   };
               cached = false;
               coalesced = false;
               wall_ms = 0.0;
             })
    | Ok (P.Submit s) -> handle_submit t c s
    | Ok P.Stats_req -> send t c (P.Stats (stats_json t))
    | Ok P.Shutdown_req ->
        t.shutting_down <- true;
        t.shutdown_conns <- c.conn_id :: t.shutdown_conns;
        event "shutdown" []
  end

let handle_readable t (c : conn) =
  let chunk = Bytes.create 4096 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop_conn t c
  | n ->
      Buffer.add_subbytes c.rbuf chunk 0 n;
      let data = Buffer.contents c.rbuf in
      let rec eat from =
        match String.index_from_opt data from '\n' with
        | None ->
            Buffer.clear c.rbuf;
            Buffer.add_string c.rbuf
              (String.sub data from (String.length data - from))
        | Some nl ->
            handle_line t c (String.sub data from (nl - from));
            eat (nl + 1)
      in
      eat 0
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_conn t c

let accept_conn t lfd =
  match Unix.accept lfd with
  | fd, _ ->
      let conn_id = t.next_conn in
      t.next_conn <- t.next_conn + 1;
      Hashtbl.replace t.conns conn_id
        { fd; conn_id; rbuf = Buffer.create 256 };
      event "accept" [ ("conn", Mcs_obs.Events.Int conn_id) ]
  | exception Unix.Unix_error _ -> ()

let dispatch_due t ~now =
  List.iter
    (fun batch ->
      t.running_jobs <- t.running_jobs + List.length batch;
      if not (Domain_pool.submit t.pool (fun () -> run_batch t batch)) then
        (* The pool stopped underneath us (shutdown raced a late window):
           run inline so no admitted request is ever left unanswered. *)
        run_batch t batch)
    (Coalesce.flush t.coal ~now ~force:t.shutting_down)

let process_completions t =
  let comps =
    Mutex.lock t.done_lock;
    let l = t.done_list in
    t.done_list <- [];
    Mutex.unlock t.done_lock;
    List.rev l
  in
  let now = Unix.gettimeofday () in
  List.iter
    (fun comp ->
      Coalesce.complete t.coal comp.entry;
      t.running_jobs <- t.running_jobs - 1;
      if t.shutting_down then t.drained <- t.drained + 1;
      List.iter
        (fun (w : Coalesce.waiter) ->
          let wall_ms = (now -. w.Coalesce.enqueued_at) *. 1000.0 in
          Admission.observe t.adm ~latency_ms:wall_ms;
          M.incr c_served;
          event "reply"
            [
              ("id", Mcs_obs.Events.Str w.Coalesce.req_id);
              ("wall_ms", Mcs_obs.Events.Float wall_ms);
            ];
          send_to t w.Coalesce.conn
            (P.Reply
               {
                 P.id = w.Coalesce.req_id;
                 outcome = comp.outcome;
                 diag = comp.diag;
                 cached = comp.cached;
                 coalesced = w.Coalesce.attached;
                 wall_ms;
               }))
        (List.rev comp.entry.Coalesce.waiters))
    comps;
  Admission.set_depth (Coalesce.pending t.coal - t.running_jobs);
  Admission.set_inflight t.running_jobs

let finish t =
  Domain_pool.shutdown t.pool;
  process_completions t;
  List.iter
    (fun conn_id -> send_to t conn_id (P.Bye { drained = t.drained }))
    (List.rev t.shutdown_conns);
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  Hashtbl.reset t.conns;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listeners;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  t.running <- false

(* For signal handlers in the daemon binary: flips the same flag a
   protocol-level shutdown request sets, so SIGTERM drains like a polite
   client (there is just no connection owed a farewell). *)
let request_shutdown t = t.shutting_down <- true

let rec select_retry fds tmo =
  try Unix.select fds [] [] tmo
  with Unix.Unix_error (Unix.EINTR, _, _) -> select_retry fds tmo

let serve t =
  while t.running do
    let now = Unix.gettimeofday () in
    dispatch_due t ~now;
    Admission.set_depth (Coalesce.pending t.coal - t.running_jobs);
    Admission.set_inflight t.running_jobs;
    if
      t.shutting_down
      && Coalesce.pending t.coal = 0
      && Domain_pool.queued t.pool = 0
    then finish t
    else begin
      let tmo =
        let cap = if t.shutting_down then 0.05 else 0.2 in
        match Coalesce.due t.coal ~now with
        | Some d -> Float.min d cap
        | None -> cap
      in
      let conn_fds =
        Hashtbl.fold (fun _ c acc -> (c.fd, c) :: acc) t.conns []
      in
      let fds = (t.wake_r :: t.listeners) @ List.map fst conn_fds in
      let readable, _, _ = select_retry fds tmo in
      List.iter
        (fun fd ->
          if fd = t.wake_r then begin
            let buf = Bytes.create 64 in
            (try ignore (Unix.read t.wake_r buf 0 64)
             with Unix.Unix_error _ -> ())
          end
          else if List.mem fd t.listeners then accept_conn t fd
          else
            match List.assoc_opt fd conn_fds with
            | Some c -> handle_readable t c
            | None -> ())
        readable;
      process_completions t
    end
  done

(** The daemon's worker pool: OCaml 5 domains draining one task queue.

    Unlike the engine's fork pool there is no process boundary — tasks
    run in-process (cheap, warm caches, shared metrics registry), so
    crash isolation is by construction instead: the server wraps every
    job so any exception becomes a [Crashed] outcome, and the pool's own
    loop additionally swallows anything that still escapes, so a dying
    task never takes its domain down.

    Shutdown is graceful by definition: workers finish every queued task
    before exiting ({!shutdown} blocks until all domains have joined).

    The [crash-worker:N] fault ({!Mcs_resilience.Fault}) is sampled once
    at {!create}; the first [N] {!take_crash} calls answer [true], which
    the server turns into injected [Crashed] outcomes — the in-process
    mirror of the fork pool killing its first [N] children.

    Counters: [server.pool.tasks], [server.pool.crashes_injected]. *)

type t

val recommended_minor_heap_words : int
(** Per-domain minor heap (in words) under which a multi-domain pool
    stops losing its parallel gains to stop-the-world minor-GC
    synchronisation on the allocation-heavy flows (measured on the serve
    grid: wall {e grew} from 0.54 s at 1 domain to 1.0 s at 4 under the
    default 256k words, and was flat at ≥1M).  On OCaml 5.1 the minor
    arenas are reserved at startup and [Gc.set] cannot grow them, so
    this cannot be applied by the pool itself — the daemon entry point
    re-execs with [OCAMLRUNPARAM=s=...] before any domain is spawned. *)

val create : ?domains:int -> unit -> t
(** Spawn [domains] (default 2, floored at 1) worker domains. *)

val size : t -> int

val submit : t -> (unit -> unit) -> bool
(** Enqueue a task; [false] (task dropped) only after {!shutdown} began. *)

val queued : t -> int
(** Tasks accepted but not yet picked up by a domain. *)

val take_crash : t -> bool
(** Consume one injected crash if any remain; called by the server once
    per executed job. *)

val shutdown : t -> unit
(** Stop accepting tasks, drain the queue, join every domain. *)

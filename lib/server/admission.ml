module M = Mcs_obs.Metrics

let c_admitted = M.counter "server.admitted"
let c_rejected = M.counter "server.rejected"
let g_depth = M.gauge "server.queue_depth"
let g_inflight = M.gauge "server.inflight"

let latency_hist =
  M.histogram "server.latency_ms"
    ~buckets:[| 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000; 2000; 5000; 10000 |]

(* A fixed ring of recently observed request latencies.  All calls come
   from the server's main loop (admission decisions and completion
   processing both happen there), so no lock is needed — this is
   documented, not accidental. *)
type t = {
  max_queue : int;
  window : float array;
  mutable filled : int;
  mutable next : int;
}

let window_size = 64

let make ?(max_queue = 256) () =
  {
    max_queue;
    window = Array.make window_size 0.0;
    filled = 0;
    next = 0;
  }

let max_queue t = t.max_queue

let observe t ~latency_ms =
  M.observe latency_hist (int_of_float (Float.max 0.0 latency_ms));
  t.window.(t.next) <- latency_ms;
  t.next <- (t.next + 1) mod window_size;
  if t.filled < window_size then t.filled <- t.filled + 1

let median t =
  if t.filled = 0 then None
  else begin
    let xs = Array.sub t.window 0 t.filled in
    Array.sort Float.compare xs;
    Some xs.(t.filled / 2)
  end

(* The admission inequality: with [depth] requests already queued or
   running ahead of this one and a single-file view of the pool (the
   conservative bound — extra domains only help), the newcomer waits
   about [depth x median] before its own ~[median] of service.  If that
   already overshoots the request's deadline, failing fast is strictly
   better than burning a domain on work whose budget will expire
   mid-solve. *)
let decide t ~depth ~deadline_ms =
  let verdict =
    if depth >= t.max_queue then
      Error
        (Printf.sprintf "queue full (%d in flight, limit %d)" depth
           t.max_queue)
    else
      match (deadline_ms, median t) with
      | Some dl, Some med when float_of_int (depth + 1) *. med > dl ->
          Error
            (Printf.sprintf
               "predicted wait %.1f ms (depth %d x median %.1f ms) exceeds \
                deadline %.1f ms"
               (float_of_int (depth + 1) *. med)
               depth med dl)
      | _ -> Ok ()
  in
  (match verdict with
  | Ok () -> M.incr c_admitted
  | Error _ -> M.incr c_rejected);
  verdict

let set_depth depth = M.set g_depth (float_of_int depth)
let set_inflight n = M.set g_inflight (float_of_int n)

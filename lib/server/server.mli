(** The synthesis daemon: accept [mcs-req/1] submissions over a
    Unix-domain socket (and optionally loopback TCP), run them on a
    {!Domain_pool} of OCaml 5 worker domains through the same
    {!Mcs_engine.Pool} execution path the CLI uses, and stream
    [mcs-run/1] replies back.

    Architecture: all socket I/O, request parsing, {!Admission} control
    and {!Coalesce} bookkeeping happen on the single main loop (a
    [select] over listeners, connections and a wake pipe); worker
    domains only execute dispatched batches and push completions back
    through a mutex-guarded list plus the wake pipe.  A per-request
    [deadline_ms] becomes the {!Mcs_resilience.Budget} of the whole
    flow; a deadline that is already unmeetable at admission, or expired
    by execution time, is answered with a typed [exhausted] diagnostic.
    With a [cache_dir], worker domains share the content-addressed
    {!Mcs_engine.Cache} (safe: the cache is bucket-locked per entry).

    Graceful shutdown (a [shutdown] request): new submissions are
    rejected, open batching windows flush, every in-flight job finishes
    and is replied to, then the requester gets the farewell with the
    drained-job count and the daemon exits {!serve}.

    Counters: [server.requests], [server.served],
    [server.protocol_errors] (plus those of {!Admission}, {!Coalesce}
    and {!Domain_pool}). *)

type config = {
  socket_path : string;
  tcp_port : int option;  (** loopback only *)
  domains : int;
  cache_dir : string option;
  window_ms : float;  (** batching window, milliseconds *)
  max_queue : int;
}

val default_config : config
(** [/tmp/mcs-serve.sock], no TCP, 2 domains, no cache, 5 ms window,
    queue limit 256. *)

type t

val create : ?config:config -> unit -> t
(** Bind the listeners and spawn the worker domains.  Ignores [SIGPIPE]
    process-wide (a disconnecting client must not kill the daemon).
    @raise Unix.Unix_error when a listener cannot bind. *)

val serve : t -> unit
(** Run the main loop until a graceful shutdown completes.  All sockets
    are closed and the socket file unlinked on exit. *)

val request_shutdown : t -> unit
(** Begin a graceful shutdown from outside the protocol — what the
    daemon's [SIGTERM]/[SIGINT] handlers call.  Async-signal-safe (sets
    one flag); {!serve} notices within one select timeout. *)

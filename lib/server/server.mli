(** The synthesis daemon: accept [mcs-req/1] submissions over a
    Unix-domain socket (and optionally loopback TCP), run them on a
    {!Supervisor} of OCaml 5 worker domains through the same
    {!Mcs_engine.Pool} execution path the CLI uses, and stream
    [mcs-run/1] replies back.

    Architecture: all socket I/O, request parsing, {!Admission} control
    and {!Coalesce} bookkeeping happen on the single main loop (a
    [select] over listeners, connections and a wake pipe); worker
    domains only execute dispatched batches and push completions back
    through a mutex-guarded list plus the wake pipe.  A per-request
    [deadline_ms] becomes the {!Mcs_resilience.Budget} of the whole
    flow; a deadline that is already unmeetable at admission, or expired
    by execution time, is answered with a typed [exhausted] diagnostic.
    With a [cache_dir], worker domains share the content-addressed
    {!Mcs_engine.Cache} (safe: the cache is bucket-locked per entry).

    Crash safety: the {!Supervisor} heartbeat-monitors the worker
    domains — a dead or stuck domain is respawned with backoff and its
    batch requeued, and a job that keeps killing domains is quarantined
    with a typed [poisoned] diagnostic (known-poison jobs are refused at
    admission).  With a [wal_path], every admitted request is fsync'd to
    the [mcs-wal/1] journal ({!Wal}) before dispatch and marked done on
    reply; [recover] replays admitted-but-unanswered records through the
    normal queue at startup, so a daemon crash loses zero accepted
    requests.

    Hostile clients: connections are nonblocking with buffered partial
    writes (a reply can never block the loop; a consumer that stops
    reading past the buffer cap is dropped), a partial line older than
    [read_deadline_s] or a connection idle past [idle_timeout_s] is
    reaped, and a frame over [max_frame] bytes is answered with a typed
    [oversized] diagnostic before the connection is retired.  [EINTR]
    around the loop's [select]/[read]/[write] restarts the call — a
    signal never surfaces as a protocol error.  At [create], a stale
    socket file left by a crashed daemon is detected by connect-probe
    and unlinked; a live daemon's socket raises [EADDRINUSE].

    Graceful shutdown (a [shutdown] request): new submissions are
    rejected, open batching windows flush, every in-flight job finishes
    and is replied to, then the requester gets the farewell with the
    drained-job count and the daemon exits {!serve}.

    Counters: [server.requests], [server.served],
    [server.protocol_errors], [server.oversized], [server.reaped],
    [server.backpressure_drops], [server.wal.recovered],
    [server.wal.torn] (plus those of {!Admission}, {!Coalesce},
    {!Supervisor} and {!Wal}). *)

type config = {
  socket_path : string;
  tcp_port : int option;  (** loopback only *)
  domains : int;
  cache_dir : string option;
  window_ms : float;  (** batching window, milliseconds *)
  max_queue : int;
  wal_path : string option;  (** durable request journal ([mcs-wal/1]) *)
  recover : bool;  (** replay incomplete journal records at startup *)
  read_deadline_s : float;
      (** max age of a partial request line before the connection is
          reaped (slowloris guard); [<= 0.] disables *)
  idle_timeout_s : float;
      (** max idle age of a connection owing/owed nothing; [<= 0.]
          disables *)
  max_frame : int;  (** request-line size bound, bytes *)
  stall_s : float;
      (** worker-domain heartbeat age before the supervisor declares it
          stuck; [<= 0.] disables *)
}

val default_config : config
(** [/tmp/mcs-serve.sock], no TCP, 2 domains, no cache, 5 ms window,
    queue limit 256, no journal, 10 s read deadline, 60 s idle timeout,
    1 MiB frames, 30 s stall threshold. *)

type t

val create : ?config:config -> unit -> t
(** Bind the listeners (probing and unlinking a stale socket file),
    replay the journal when [recover] is set, and spawn the supervised
    worker domains.  Ignores [SIGPIPE] process-wide (a disconnecting
    client must not kill the daemon).
    @raise Unix.Unix_error when a listener cannot bind, including
    [EADDRINUSE] when a live daemon already owns the socket. *)

val serve : t -> unit
(** Run the main loop until a graceful shutdown completes.  All sockets
    are closed, the journal closed, and the socket file unlinked on
    exit. *)

val request_shutdown : t -> unit
(** Begin a graceful shutdown from outside the protocol — what the
    daemon's [SIGTERM]/[SIGINT] handlers call.  Async-signal-safe (sets
    one flag); {!serve} notices within one select timeout. *)

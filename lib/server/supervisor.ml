module M = Mcs_obs.Metrics
module Strikes = Mcs_engine.Pool.Strikes

let c_tasks = M.counter "server.pool.tasks"
let c_crashes_injected = M.counter "server.pool.crashes_injected"
let c_respawns = M.counter "server.respawns"
let c_requeued = M.counter "server.requeued"
let c_poisoned = M.counter "server.poisoned"

exception Domain_killed
(* Raised inside a worker when the kill-domain fault fires: it escapes
   the worker loop, the spawn wrapper records the death, and the main
   loop's [check] observes a dead slot — the exact same path a genuinely
   fatal defect in a worker would take. *)

(* See the dune history (ex-Domain_pool) for the measurement; the daemon
   entry point applies this via OCAMLRUNPARAM before any domain is
   spawned, because on OCaml 5.1 [Gc.set] cannot grow the per-domain
   minor arenas after startup. *)
let recommended_minor_heap_words = 4 * 1024 * 1024

type 'a batch = {
  entries : 'a array;
  mutable cursor : int;
      (* next entry to run; entries below it are delivered *)
  mutable cancelled : bool;
      (* retired by requeue — a zombie still holding this batch must
         discard its in-flight result and stop *)
}

type 'a slot = {
  mutable gen : int;
      (* bumped per spawn; a domain carrying a stale generation is a
         superseded zombie and must discard its work *)
  mutable dom : unit Domain.t option;
  mutable busy : ('a batch * int) option;  (* batch, entry being run *)
  mutable heartbeat : float;
  mutable dead : bool;  (* exited abnormally; awaiting [check] *)
  mutable failures : int;  (* consecutive deaths, drives backoff *)
  mutable respawn_at : float;
}

type ('a, 'c) t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : 'a batch Queue.t;
  slots : 'a slot array;
  strikes : Strikes.t;
  key : 'a -> string;
  exec : 'a array -> int -> 'c;
  deliver : 'c -> unit;
  on_poisoned : 'a -> strikes:int -> unit;
  on_wake : unit -> unit;
  stall_s : float;
  backoff_s : float;
  mutable zombies : unit Domain.t list;
      (* superseded stuck domains: never joined — a domain wedged in a
         solver may never return, and joining it would wedge shutdown
         too.  Each zombie leaks one domain until process exit;
         {!zombie_count} keeps the leak observable. *)
  mutable stopping : bool;
  mutable crash_left : int;  (* crash-worker:N fault, guarded by [lock] *)
}

let size t = Array.length t.slots

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---- worker side ---- *)

(* Run the batch the worker just took, one entry at a time, refreshing
   the heartbeat and re-checking freshness under the lock at every entry
   boundary.  The completion is delivered only when the claim was still
   fresh after execution, and the cursor is advanced in the same locked
   section — so a requeue (which takes entries from the cursor on) can
   never replay an entry whose completion was delivered, and a
   superseded zombie can never deliver a completion the requeue will
   also produce.  That pair of rules is the exactly-once invariant. *)
let run_batch t (slot : 'a slot) gen batch =
  let n = Array.length batch.entries in
  let rec step () =
    let claim =
      with_lock t (fun () ->
          if batch.cancelled || slot.gen <> gen || batch.cursor >= n then begin
            if slot.gen = gen then slot.busy <- None;
            None
          end
          else begin
            let i = batch.cursor in
            slot.busy <- Some (batch, i);
            slot.heartbeat <- Unix.gettimeofday ();
            Some i
          end)
    in
    match claim with
    | None -> ()
    | Some i ->
        if Mcs_resilience.Fault.kill_domain () then raise Domain_killed;
        let comp = t.exec batch.entries i in
        let fresh =
          with_lock t (fun () ->
              let fresh =
                (not batch.cancelled) && slot.gen = gen && batch.cursor = i
              in
              if fresh then batch.cursor <- i + 1;
              fresh)
        in
        if fresh then begin
          (* A completed entry clears the job's strikes: the circuit
             breaker is for jobs that *keep* killing their executor. *)
          Strikes.forgive t.strikes (t.key batch.entries.(i));
          t.deliver comp
        end;
        step ()
  in
  step ()

let rec worker_loop t slot gen =
  let batch =
    with_lock t (fun () ->
        while
          Queue.is_empty t.queue && (not t.stopping) && slot.gen = gen
        do
          Condition.wait t.nonempty t.lock
        done;
        if slot.gen <> gen || Queue.is_empty t.queue then None
        else begin
          let b = Queue.pop t.queue in
          slot.busy <- Some (b, b.cursor);
          slot.heartbeat <- Unix.gettimeofday ();
          Some b
        end)
  in
  match batch with
  | None -> () (* stopping and drained, or superseded *)
  | Some b ->
      run_batch t slot gen b;
      worker_loop t slot gen

let spawn_slot t slot =
  slot.gen <- slot.gen + 1;
  let gen = slot.gen in
  slot.busy <- None;
  slot.dead <- false;
  slot.heartbeat <- Unix.gettimeofday ();
  slot.dom <-
    Some
      (Domain.spawn (fun () ->
           try worker_loop t slot gen
           with _ ->
             (* Any escape — the kill-domain fault or a defect the
                server's own wrapping missed — marks the slot dead for
                the supervisor.  The exception must not cross the join,
                and [dom] stays set so [check] can join the (already
                terminating) domain. *)
             Mutex.lock t.lock;
             if slot.gen = gen then slot.dead <- true;
             Mutex.unlock t.lock;
             t.on_wake ()))

(* ---- main-loop side ---- *)

let create ?(domains = 2) ?(stall_s = 30.0) ?(backoff_ms = 25.0) ?strikes
    ~key ~exec ~deliver ~on_poisoned ~on_wake () =
  let strikes =
    match strikes with Some s -> s | None -> Strikes.create ()
  in
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      slots =
        Array.init (max 1 domains) (fun _ ->
            {
              gen = 0;
              dom = None;
              busy = None;
              heartbeat = 0.0;
              dead = false;
              failures = 0;
              respawn_at = 0.0;
            });
      strikes;
      key;
      exec;
      deliver;
      on_poisoned;
      on_wake;
      stall_s;
      backoff_s = Float.max 0.001 (backoff_ms /. 1000.0);
      zombies = [];
      stopping = false;
      (* Sampled once at creation, mirroring the fork pool killing its
         first N children (see {!take_crash}). *)
      crash_left = Mcs_resilience.Fault.crash_workers ();
    }
  in
  Array.iter (fun slot -> spawn_slot t slot) t.slots;
  t

let strikes t = t.strikes
let poisoned_key t k = Strikes.poisoned t.strikes k

let submit t entries =
  if Array.length entries = 0 then true
  else begin
    M.incr c_tasks;
    with_lock t (fun () ->
        let accepted = not t.stopping in
        if accepted then
          Queue.push { entries; cursor = 0; cancelled = false } t.queue;
        Condition.signal t.nonempty;
        accepted)
  end

let queued t = with_lock t (fun () -> Queue.length t.queue)
let zombie_count t = with_lock t (fun () -> List.length t.zombies)

let take_crash t =
  with_lock t (fun () ->
      let crash = t.crash_left > 0 in
      if crash then begin
        t.crash_left <- t.crash_left - 1;
        M.incr c_crashes_injected
      end;
      crash)

let backoff t failures =
  Float.min 2.0 (t.backoff_s *. float_of_int (1 lsl min 6 (failures - 1)))

(* Retire a dead or stuck slot's batch: strike the entry the worker was
   on, requeue everything from the cursor (minus the striker when it
   just went poison), and report poisoned entries so every admitted
   request still gets exactly one answer.  Called with the lock held. *)
let requeue_batch t (batch, _) poisoned_acc =
  if not batch.cancelled then begin
    batch.cancelled <- true;
    let n = Array.length batch.entries in
    let i = batch.cursor in
    if i < n then begin
      let verdict = Strikes.record t.strikes (t.key batch.entries.(i)) in
      let from =
        match verdict with
        | `Retry _ -> i
        | `Poisoned strikes ->
            M.incr c_poisoned;
            poisoned_acc := (batch.entries.(i), strikes) :: !poisoned_acc;
            i + 1
      in
      if from < n then begin
        let rest = Array.sub batch.entries from (n - from) in
        M.incr c_requeued ~n:(Array.length rest);
        Queue.push { entries = rest; cursor = 0; cancelled = false } t.queue;
        Condition.signal t.nonempty
      end
    end
  end

let check t ~now =
  let to_join = ref [] and poisoned_acc = ref [] in
  with_lock t (fun () ->
      Array.iter
        (fun slot ->
          if slot.dead then begin
            (match slot.dom with
            | Some d ->
                to_join := d :: !to_join;
                slot.dom <- None
            | None -> ());
            (match slot.busy with
            | Some b -> requeue_batch t b poisoned_acc
            | None -> ());
            slot.busy <- None;
            slot.dead <- false;
            slot.failures <- slot.failures + 1;
            slot.respawn_at <- now +. backoff t slot.failures
          end
          else
            match slot.busy with
            | Some b
              when t.stall_s > 0.0 && now -. slot.heartbeat > t.stall_s ->
                (* Stuck mid-entry: supersede the domain (generation
                   bump — its late completion will be discarded), park
                   it as a zombie, and requeue with a strike exactly as
                   if it had died. *)
                (match slot.dom with
                | Some d ->
                    t.zombies <- d :: t.zombies;
                    slot.dom <- None
                | None -> ());
                slot.gen <- slot.gen + 1;
                requeue_batch t b poisoned_acc;
                slot.busy <- None;
                slot.failures <- slot.failures + 1;
                slot.respawn_at <- now +. backoff t slot.failures
            | _ ->
                if
                  slot.dom = None && (not t.stopping)
                  && now >= slot.respawn_at
                then begin
                  M.incr c_respawns;
                  spawn_slot t slot
                end)
        t.slots);
  (* Joins and poisoned replies happen outside the supervisor lock: a
     dead domain's join is near-instant (its wrapper swallowed the
     exception and is returning), and the poisoned callback takes the
     server's completion lock. *)
  List.iter Domain.join !to_join;
  List.iter
    (fun (e, strikes) -> t.on_poisoned e ~strikes)
    (List.rev !poisoned_acc)

let shutdown t =
  let doms =
    with_lock t (fun () ->
        t.stopping <- true;
        Condition.broadcast t.nonempty;
        Array.to_list t.slots
        |> List.filter_map (fun slot ->
               let d = slot.dom in
               slot.dom <- None;
               d))
  in
  List.iter Domain.join doms;
  (* With every live domain joined, a slot still holding a batch died
     (or stalled) without a [check] pass retiring it — requeue those
     batches now so the inline drain below answers them. *)
  let poisoned_acc = ref [] in
  with_lock t (fun () ->
      Array.iter
        (fun slot ->
          match slot.busy with
          | Some b ->
              requeue_batch t b poisoned_acc;
              slot.busy <- None
          | None -> ())
        t.slots);
  List.iter
    (fun (e, strikes) -> t.on_poisoned e ~strikes)
    (List.rev !poisoned_acc);
  (* Anything still queued (every live domain died right before
     shutdown, or respawns were pending) drains inline in the caller:
     graceful shutdown means finishing admitted work, not dropping it.
     An entry that still manages to fail here is answered as poisoned —
     there is no domain left to sacrifice to a retry. *)
  let rec drain () =
    match with_lock t (fun () -> Queue.take_opt t.queue) with
    | None -> ()
    | Some batch ->
        let n = Array.length batch.entries in
        let rec step () =
          if (not batch.cancelled) && batch.cursor < n then begin
            let i = batch.cursor in
            (match t.exec batch.entries i with
            | comp ->
                batch.cursor <- i + 1;
                t.deliver comp
            | exception _ ->
                batch.cursor <- i + 1;
                M.incr c_poisoned;
                t.on_poisoned batch.entries.(i)
                  ~strikes:(Strikes.count t.strikes (t.key batch.entries.(i))));
            step ()
          end
        in
        step ();
        drain ()
  in
  drain ()

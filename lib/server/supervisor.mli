(** The daemon's supervised worker pool: OCaml 5 domains draining a
    queue of batches, under heartbeat monitoring with respawn, requeue
    and poison quarantine.

    The plain pool this replaces assumed worker domains never die.  The
    supervisor assumes they do: each slot records a generation, the
    batch and entry it is on, and a heartbeat refreshed at every entry
    boundary.  The main loop calls {!check} each tick:

    - A {e dead} slot (its domain's spawn wrapper caught an escaping
      exception — the [kill-domain] fault, or a defect the server's own
      wrapping missed) is joined, the entry it was on takes a strike in
      the shared {!Mcs_engine.Pool.Strikes} ledger, the rest of its
      batch is requeued ([server.requeued]), and the domain is respawned
      after an exponential backoff ([server.respawns]).
    - A {e stuck} slot (heartbeat older than [stall_s]) is superseded: a
      generation bump makes any late completion discardable, the domain
      is parked as a never-joined zombie (it may be wedged forever), and
      its batch is requeued with a strike exactly as if it had died.
    - An entry whose strikes reach the ledger limit (default 2) is
      {e poisoned} ([server.poisoned]): reported through [on_poisoned]
      instead of requeued — the circuit breaker that stops a lethal job
      from grinding the pool down forever.  {!poisoned_key} lets the
      server fast-fail known-poison submissions at admission.

    Exactly-once delivery: a completion is delivered if and only if the
    executing domain still held a fresh claim (same generation, batch
    not cancelled) after [exec] returned — checked under the lock that
    also advances the batch cursor — so a requeue never replays a
    delivered entry and a zombie never delivers alongside its
    replacement.

    Graceful {!shutdown} joins live domains and drains any leftover
    queue inline, so admitted work is finished, not dropped.

    The [crash-worker:N] fault is sampled once at {!create}; the first
    [N] {!take_crash} calls answer [true] (the in-process mirror of the
    fork pool killing its first [N] children).

    Counters: [server.pool.tasks], [server.pool.crashes_injected],
    [server.respawns], [server.requeued], [server.poisoned]. *)

type ('a, 'c) t
(** ['a] is the batch-entry type, ['c] the completion type [exec]
    produces and [deliver] consumes. *)

exception Domain_killed
(** What the [kill-domain] fault raises inside a worker. *)

val recommended_minor_heap_words : int
(** Per-domain minor heap (in words) under which a multi-domain pool
    stops losing its parallel gains to stop-the-world minor-GC
    synchronisation on the allocation-heavy flows.  On OCaml 5.1 the
    minor arenas are reserved at startup and [Gc.set] cannot grow them,
    so the daemon entry point re-execs with [OCAMLRUNPARAM=s=...] before
    any domain is spawned. *)

val create :
  ?domains:int ->
  ?stall_s:float ->
  ?backoff_ms:float ->
  ?strikes:Mcs_engine.Pool.Strikes.t ->
  key:('a -> string) ->
  exec:('a array -> int -> 'c) ->
  deliver:('c -> unit) ->
  on_poisoned:('a -> strikes:int -> unit) ->
  on_wake:(unit -> unit) ->
  unit ->
  ('a, 'c) t
(** Spawn [domains] (default 2, floored at 1) supervised worker domains.
    [stall_s] (default 30, [<= 0.] disables) is the heartbeat age past
    which a busy domain counts as stuck; [backoff_ms] (default 25) the
    base respawn backoff, doubled per consecutive failure and capped at
    2 s.  [key] gives an entry's canonical identity for the [strikes]
    ledger (default: a private one with the standard 2-strike limit).
    [exec entries i] runs one entry and returns its completion —
    called on a worker domain, it must not touch supervisor state.
    [deliver] and [on_poisoned] hand results back (worker domain /
    main-loop context respectively); [on_wake] pokes the main loop after
    a death so {!check} runs promptly. *)

val size : ('a, 'c) t -> int

val submit : ('a, 'c) t -> 'a array -> bool
(** Enqueue a batch; [false] (batch dropped) only after {!shutdown}
    began.  An empty batch is accepted and ignored. *)

val queued : ('a, 'c) t -> int
(** Batches accepted but not yet picked up by a domain. *)

val check : ('a, 'c) t -> now:float -> unit
(** The supervision tick (main-loop context): join dead domains,
    supersede stuck ones, strike/requeue/poison their batches, respawn
    slots whose backoff has elapsed. *)

val take_crash : ('a, 'c) t -> bool
(** Consume one injected [crash-worker] crash if any remain. *)

val strikes : ('a, 'c) t -> Mcs_engine.Pool.Strikes.t
val poisoned_key : ('a, 'c) t -> string -> bool
(** Is this canonical key quarantined?  (Admission-time circuit
    breaker.) *)

val zombie_count : ('a, 'c) t -> int
(** Superseded stuck domains parked un-joined — the observable leak. *)

val shutdown : ('a, 'c) t -> unit
(** Stop accepting batches, join live domains, requeue batches stranded
    by un-checked deaths, and drain the remaining queue inline (entries
    that fail even inline are reported through [on_poisoned]). *)

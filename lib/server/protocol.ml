module J = Mcs_obs.Report_json
module Job = Mcs_engine.Job
module Outcome = Mcs_engine.Outcome
module Diag = Mcs_flow.Diag

let request_magic = "mcs-req/1"
let reply_magic = "mcs-run/1"
let stats_magic = "mcs-serve/1"

type submit = {
  id : string;
  job : Job.t;
  deadline_ms : float option;
  fallback : bool;
}

type request = Submit of submit | Stats_req | Shutdown_req

type diag = { code : string; phase : string; message : string }

type reply = {
  id : string;
  outcome : Outcome.t option;
  diag : diag option;
  cached : bool;
  coalesced : bool;
  wall_ms : float;
}

type response = Reply of reply | Stats of J.t | Bye of { drained : int }

let diag_of_flow (d : Diag.t) =
  {
    code = Diag.code_to_string d.Diag.code;
    phase = d.Diag.phase;
    message = d.Diag.message;
  }

let exhausted_diag ~phase message =
  { code = Diag.code_to_string Diag.Exhausted; phase; message }

let poisoned_diag ~phase message =
  { code = Diag.code_to_string Diag.Poisoned; phase; message }

let oversized_diag ~phase message =
  { code = Diag.code_to_string Diag.Oversized; phase; message }

(* ---- requests ---- *)

let submit ?(id = "") ?deadline_ms ?(fallback = true) job =
  Submit { id; job; deadline_ms; fallback }

let request_to_string = function
  | Stats_req ->
      J.to_string (J.Obj [ ("v", J.Str request_magic); ("stats", J.Bool true) ])
  | Shutdown_req ->
      J.to_string
        (J.Obj [ ("v", J.Str request_magic); ("shutdown", J.Bool true) ])
  | Submit s ->
      J.to_string
        (J.Obj
           ([ ("v", J.Str request_magic) ]
           @ (if s.id = "" then [] else [ ("id", J.Str s.id) ])
           @ [ ("job", J.Str (Job.to_string s.job)) ]
           @ (match s.deadline_ms with
             | Some ms -> [ ("deadline_ms", J.Float ms) ]
             | None -> [])
           @ if s.fallback then [] else [ ("fallback", J.Bool false) ]))

let member_str k j = Option.bind (J.member k j) J.to_str

let member_bool k j =
  match J.member k j with Some (J.Bool b) -> Some b | _ -> None

let request_of_string line =
  let line = String.trim line in
  if line = "" then Error "empty request line"
  else if String.length line >= 1 && line.[0] <> '{' then
    (* Bare canonical job lines are accepted so `mcs-job/1|...` pasted
       straight from a report (or piped from `dse`) works without JSON
       wrapping; the server assigns the request an id. *)
    match Job.of_string line with
    | Ok job -> Ok (submit job)
    | Error m -> Error m
  else
    match J.of_string line with
    | Error m -> Error ("bad request JSON: " ^ m)
    | Ok j -> (
        match member_str "v" j with
        | Some v when v = request_magic -> (
            if member_bool "stats" j = Some true then Ok Stats_req
            else if member_bool "shutdown" j = Some true then Ok Shutdown_req
            else
              match member_str "job" j with
              | None -> Error "request has neither job, stats nor shutdown"
              | Some enc -> (
                  match Job.of_string enc with
                  | Error m -> Error m
                  | Ok job ->
                      let id =
                        Option.value ~default:"" (member_str "id" j)
                      in
                      let deadline_ms =
                        Option.bind (J.member "deadline_ms" j) J.to_float
                      in
                      let fallback =
                        Option.value ~default:true (member_bool "fallback" j)
                      in
                      Ok (Submit { id; job; deadline_ms; fallback })))
        | Some v -> Error ("unknown request version " ^ v)
        | None -> Error "request lacks a version field")

(* ---- responses ---- *)

let diag_to_json d =
  J.Obj
    [
      ("code", J.Str d.code);
      ("phase", J.Str d.phase);
      ("message", J.Str d.message);
    ]

let diag_of_json j =
  match (member_str "code" j, member_str "phase" j, member_str "message" j) with
  | Some code, Some phase, Some message -> Ok { code; phase; message }
  | _ -> Error "bad diag object"

let response_to_string = function
  | Bye { drained } ->
      J.to_string
        (J.Obj
           [
             ("v", J.Str stats_magic);
             ("bye", J.Bool true);
             ("drained", J.Int drained);
           ])
  | Stats j -> J.to_string j
  | Reply r ->
      J.to_string
        (J.Obj
           ([
              ("v", J.Str reply_magic);
              ("id", J.Str r.id);
              ("wall_ms", J.Float r.wall_ms);
              ("cached", J.Bool r.cached);
              ("coalesced", J.Bool r.coalesced);
            ]
           @ (match r.outcome with
             | Some o -> [ ("outcome", Outcome.to_json o) ]
             | None -> [])
           @
           match r.diag with
           | Some d -> [ ("diag", diag_to_json d) ]
           | None -> []))

let response_of_string line =
  match J.of_string (String.trim line) with
  | Error m -> Error ("bad response JSON: " ^ m)
  | Ok j -> (
      match member_str "v" j with
      | Some v when v = stats_magic ->
          if member_bool "bye" j = Some true then
            match Option.bind (J.member "drained" j) J.to_int with
            | Some drained -> Ok (Bye { drained })
            | None -> Error "bye response lacks a drained count"
          else Ok (Stats j)
      | Some v when v = reply_magic -> (
          match member_str "id" j with
          | None -> Error "reply lacks an id"
          | Some id -> (
              let wall_ms =
                Option.value ~default:0.0
                  (Option.bind (J.member "wall_ms" j) J.to_float)
              in
              let cached =
                Option.value ~default:false (member_bool "cached" j)
              in
              let coalesced =
                Option.value ~default:false (member_bool "coalesced" j)
              in
              let diag =
                match J.member "diag" j with
                | None -> Ok None
                | Some dj -> Result.map Option.some (diag_of_json dj)
              in
              let outcome =
                match J.member "outcome" j with
                | None -> Ok None
                | Some oj -> Result.map Option.some (Outcome.of_json oj)
              in
              match (outcome, diag) with
              | Ok outcome, Ok diag ->
                  Ok (Reply { id; outcome; diag; cached; coalesced; wall_ms })
              | Error m, _ | _, Error m -> Error m))
      | Some v -> Error ("unknown response version " ^ v)
      | None -> Error "response lacks a version field")

(** Blocking client for the daemon's wire protocol — what the
    [mcs_synth client] subcommand, the benchmarks and the tests speak.

    One connection, synchronous line-delimited exchanges.  All functions
    may raise [Unix.Unix_error] on transport failure at connect/send
    time; protocol-level problems come back as [Error _]. *)

type t

val connect_unix : string -> t
val connect_tcp : string -> int -> t
val close : t -> unit

val send : t -> Protocol.request -> unit
val recv : t -> (Protocol.response, string) result

val submit_all :
  t -> Protocol.submit list -> (Protocol.reply list, string) result
(** Pipeline all submissions, then collect until every id has replied;
    results return in submission order regardless of the server's
    completion order.  Submits with id [""] get client-assigned ids
    [c0], [c1], ...  A connection-level error reply (one without an id,
    e.g. a typed [oversized] rejection) returns [Error] immediately —
    it answers no pending submit and the server closes after it. *)

val stats : t -> (Mcs_obs.Report_json.t, string) result
(** The [mcs-serve/1] stats object. *)

val shutdown : t -> (int, string) result
(** Graceful shutdown; returns the server's drained-jobs count from its
    farewell once all in-flight work finished. *)

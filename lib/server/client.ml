module P = Protocol

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let of_fd fd =
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  of_fd fd

let connect_tcp host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (addr, port));
  of_fd fd

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  output_string t.oc (P.request_to_string req);
  output_char t.oc '\n';
  flush t.oc

let recv t =
  match input_line t.ic with
  | line -> P.response_of_string line
  | exception End_of_file -> Error "server closed the connection"

(* Fire all submissions, then collect replies until every id has
   answered; replies come back in completion order (coalescing and
   batching reorder freely), so results are re-sorted into submission
   order by id.  Requests with an empty id get client-assigned ones. *)
let submit_all t submits =
  let submits =
    List.mapi
      (fun i (s : P.submit) ->
        if s.P.id = "" then { s with P.id = Printf.sprintf "c%d" i } else s)
      submits
  in
  List.iter (fun s -> send t (P.Submit s)) submits;
  let wanted = List.map (fun (s : P.submit) -> s.P.id) submits in
  let replies = Hashtbl.create (List.length submits) in
  let rec collect () =
    if Hashtbl.length replies < List.length submits then
      match recv t with
      | Error m -> Error m
      | Ok (P.Reply r) when r.P.id = "" ->
          (* A connection-level error reply (oversized frame, unparsable
             request) carries no id: it answers no pending submit, and
             the server is about to close on us — surfacing it beats
             collecting forever. *)
          Error
            (match r.P.diag with
            | Some d -> Printf.sprintf "%s: %s [%s]" d.P.phase d.P.message d.P.code
            | None -> "server error reply without id")
      | Ok (P.Reply r) ->
          if List.mem r.P.id wanted then Hashtbl.replace replies r.P.id r;
          collect ()
      | Ok (P.Stats _ | P.Bye _) -> collect ()
    else Ok ()
  in
  match collect () with
  | Error m -> Error m
  | Ok () ->
      Ok (List.map (fun id -> Hashtbl.find replies id) wanted)

let stats t =
  send t P.Stats_req;
  let rec wait () =
    match recv t with
    | Error m -> Error m
    | Ok (P.Stats j) -> Ok j
    | Ok (P.Reply _ | P.Bye _) -> wait ()
  in
  wait ()

let shutdown t =
  send t P.Shutdown_req;
  let rec wait () =
    match recv t with
    | Error m -> Error m
    | Ok (P.Bye { drained }) -> Ok drained
    | Ok (P.Reply _ | P.Stats _) -> wait ()
  in
  wait ()

type info = { cstep : int; finish_ns : int }

let op_delay_ns cdfg mlib op =
  match Cdfg.node cdfg op with
  | Types.Io _ -> Module_lib.io_delay_ns mlib
  | Types.Func { optype; _ } -> Module_lib.delay_ns mlib optype

let op_cycles cdfg mlib op =
  match Cdfg.node cdfg op with
  | Types.Io _ -> 1
  | Types.Func { optype; _ } -> Module_lib.cycles mlib optype

let op_chainable cdfg mlib op = op_cycles cdfg mlib op = 1

(* Generic earliest-start pass over an arbitrary (order, preds) view; used
   forward for ASAP and on the reversed graph for ALAP. *)
let earliest cdfg mlib ~order ~preds =
  let stage = Module_lib.stage_ns mlib in
  let n = Cdfg.n_ops cdfg in
  let res = Array.make n { cstep = 0; finish_ns = 0 } in
  let delay = op_delay_ns cdfg mlib in
  let cycles = op_cycles cdfg mlib in
  let chainable = op_chainable cdfg mlib in
  let place v =
    let dv = delay v in
    let ps = preds v in
    let chain_legal p =
      chainable p && chainable v && res.(p).finish_ns + dv <= stage
    in
    (* Earliest control step admissible for every predecessor. *)
    let cstep0 =
      List.fold_left
        (fun acc p ->
          let need =
            if chain_legal p then res.(p).cstep
            else res.(p).cstep + cycles p
          in
          max acc need)
        0 ps
    in
    if cycles v > 1 then res.(v) <- { cstep = cstep0; finish_ns = 0 }
    else begin
      (* Offset forced by predecessors whose value is not yet registered at
         the start of [cstep0]. *)
      let offset =
        List.fold_left
          (fun acc p ->
            if res.(p).cstep = cstep0 && res.(p).cstep + cycles p > cstep0
            then max acc res.(p).finish_ns
            else acc)
          0 ps
      in
      if offset + dv <= stage then
        res.(v) <- { cstep = cstep0; finish_ns = offset + dv }
      else res.(v) <- { cstep = cstep0 + 1; finish_ns = dv }
    end
  in
  List.iter place order;
  res

let asap cdfg mlib =
  earliest cdfg mlib ~order:(Cdfg.topo_order cdfg) ~preds:(Cdfg.preds cdfg)

let m_cp_evals = Mcs_obs.Metrics.counter "timing.critical_path_evals"

let critical_path_csteps cdfg mlib =
  Mcs_obs.Metrics.incr m_cp_evals;
  let a = asap cdfg mlib in
  let worst = ref 0 in
  List.iter
    (fun v ->
      let last = a.(v).cstep + op_cycles cdfg mlib v - 1 in
      if last > !worst then worst := last)
    (Cdfg.ops cdfg);
  !worst + 1

let alap cdfg mlib ~pipe_length =
  if pipe_length < critical_path_csteps cdfg mlib then None
  else begin
    let rev =
      earliest cdfg mlib
        ~order:(List.rev (Cdfg.topo_order cdfg))
        ~preds:(Cdfg.succs cdfg)
    in
    (* In reversed time an op starting at reverse step r with c cycles ends
       (in forward time) at cstep (pipe_length - 1 - r) and starts c-1 steps
       earlier. *)
    let n = Cdfg.n_ops cdfg in
    let res = Array.make n { cstep = 0; finish_ns = 0 } in
    for v = 0 to n - 1 do
      let c = op_cycles cdfg mlib v in
      let last = pipe_length - 1 - rev.(v).cstep in
      res.(v) <- { cstep = last - (c - 1); finish_ns = rev.(v).finish_ns }
    done;
    Some res
  end

(* Bound on the initiation rate imposed by cycles through data recursive
   edges: feasible at rate L iff the graph with arc weights
   cycles(src) - degree*L has no positive cycle (Bellman-Ford style longest
   path relaxation). *)
let rate_feasible cdfg mlib rate =
  let n = Cdfg.n_ops cdfg in
  let dist = Array.make n 0 in
  let edges = Cdfg.edges cdfg in
  let relax () =
    List.fold_left
      (fun changed { Types.e_src; e_dst; degree } ->
        let w = op_cycles cdfg mlib e_src - (degree * rate) in
        if dist.(e_src) + w > dist.(e_dst) then begin
          dist.(e_dst) <- dist.(e_src) + w;
          true
        end
        else changed)
      false edges
  in
  (* Converges within n passes iff there is no positive cycle. *)
  let rec loop i =
    if not (relax ()) then true else if i >= n then false else loop (i + 1)
  in
  loop 0

let min_initiation_rate cdfg mlib =
  let floor_rate =
    List.fold_left
      (fun acc v -> max acc (op_cycles cdfg mlib v))
      1 (Cdfg.ops cdfg)
  in
  let rec search rate =
    if rate_feasible cdfg mlib rate then rate else search (rate + 1)
  in
  (* Total latency is a trivially feasible rate, so the search terminates. *)
  search floor_rate

let max_time_constraints cdfg mlib ~rate =
  List.filter_map
    (fun { Types.e_src; e_dst; degree } ->
      if degree = 0 then None
      else Some (e_src, e_dst, (degree * rate) - op_cycles cdfg mlib e_src))
    (Cdfg.edges cdfg)
